package simulate

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// certBroadcast exchanges certificates with neighbors and accepts iff
// every received certificate equals the node's own first certificate. It
// makes the Result's bit accounting depend on the certificate list, so
// byte-identity between prepared and fresh runs is meaningful.
func certBroadcast() *Machine {
	type st struct {
		deg  int
		cert string
		ok   bool
	}
	return &Machine{
		Name: "cert-broadcast",
		Init: func(in Input) any {
			s := &st{deg: in.Degree, ok: true}
			if len(in.Certs) > 0 {
				s.cert = in.Certs[0]
			}
			return s
		},
		Round: func(sv any, round int, recv []string) ([]string, bool) {
			s := sv.(*st)
			if round == 1 {
				out := make([]string, s.deg)
				for i := range out {
					out[i] = s.cert
				}
				return out, false
			}
			for _, m := range recv {
				if m != s.cert {
					s.ok = false
				}
			}
			return nil, true
		},
		Output: func(sv any) string {
			if sv.(*st).ok {
				return "1"
			}
			return "0"
		},
	}
}

// batchCerts enumerates all single-bit certificate lists for n nodes.
func batchCerts(n int) [][][]string {
	var out [][][]string
	for mask := 0; mask < 1<<uint(n); mask++ {
		certs := make([][]string, n)
		for u := 0; u < n; u++ {
			if mask&(1<<uint(u)) != 0 {
				certs[u] = []string{"1"}
			} else {
				certs[u] = []string{"0"}
			}
		}
		out = append(out, certs)
	}
	return out
}

// TestPreparedMatchesRun: reusing one Prepared instance across differing
// certificate lists must produce byte-identical Results to fresh Run
// calls, in both node-execution modes.
func TestPreparedMatchesRun(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(5).MustWithLabels([]string{"1", "1", "0", "1", "1"})
	id := graph.SmallLocallyUnique(g, 1)
	p, err := Prepare(g, id)
	if err != nil {
		t.Fatal(err)
	}
	m := certBroadcast()
	for _, seq := range []bool{true, false} {
		for _, certs := range batchCerts(g.N()) {
			want, err := Run(m, g, id, certs, Options{Sequential: seq})
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Run(m, certs, Options{Sequential: seq})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seq=%v certs=%v: prepared %+v, fresh %+v", seq, certs, got, want)
			}
		}
	}
}

// TestBatchMatchesRun: the scheduler must return, for every job and every
// pool size, exactly the Result a fresh simulate.Run produces — same
// Outputs, Rounds, RecvBits, and SentBits. Running under -race
// additionally checks the worker pool.
func TestBatchMatchesRun(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(6).MustWithLabels([]string{"1", "0", "1", "1", "0", "1"})
	id := graph.SmallLocallyUnique(g, 1)
	p, err := Prepare(g, id)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for _, certs := range batchCerts(g.N()) {
		jobs = append(jobs, Job{Machine: certBroadcast(), Certs: certs})
	}
	// Mixed machines in one batch, including cert-free ones.
	jobs = append(jobs,
		Job{Machine: allSelected()},
		Job{Machine: broadcastLabelEq()},
	)
	want := make([]*Result, len(jobs))
	for i, j := range jobs {
		want[i], err = Run(j.Machine, g, id, j.Certs, Options{})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 3, 16} {
		for _, seq := range []bool{true, false} {
			got, err := p.Batch(jobs, BatchOptions{Workers: workers, Run: Options{Sequential: seq}})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i := range jobs {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("workers=%d seq=%v job %d: batch %+v, fresh %+v",
						workers, seq, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchCancellation: a cancelled context stops the batch and is
// reported; jobs not started stay nil.
func TestBatchCancellation(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(4)
	id := graph.SmallLocallyUnique(g, 1)
	p, err := Prepare(g, id)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{Machine: allSelected()}
	}
	for _, workers := range []int{1, 4} {
		results, err := p.Batch(jobs, BatchOptions{Workers: workers, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// With a pre-cancelled context no worker should get past its
		// first poll; at least the tail of the batch must be untouched.
		if results[len(results)-1] != nil {
			t.Fatalf("workers=%d: cancelled batch still ran the last job", workers)
		}
	}
}

// TestBatchError: a non-terminating job fails with its index, while the
// other jobs' results are still populated.
func TestBatchError(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(4)
	id := graph.SmallLocallyUnique(g, 1)
	p, err := Prepare(g, id)
	if err != nil {
		t.Fatal(err)
	}
	spin := &Machine{
		Name:   "spin",
		Init:   func(Input) any { return nil },
		Round:  func(any, int, []string) ([]string, bool) { return nil, false },
		Output: func(any) string { return "1" },
	}
	jobs := []Job{
		{Machine: allSelected()},
		{Machine: spin},
		{Machine: allSelected()},
	}
	results, err := p.Batch(jobs, BatchOptions{Workers: 2, Run: Options{MaxRounds: 4}})
	if !errors.Is(err, ErrDidNotTerminate) {
		t.Fatalf("err = %v, want ErrDidNotTerminate", err)
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("successful jobs should keep their results")
	}
	if results[1] != nil {
		t.Fatal("failed job should have a nil result")
	}
}
