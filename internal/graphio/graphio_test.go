package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(4).MustWithLabels([]string{"1", "0", "11", ""})
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatalf("round trip changed the graph: %v vs %v", g, h)
	}
}

func TestDecodeValidation(t *testing.T) {
	t.Parallel()
	cases := []string{
		`{"n":0}`,            // empty
		`{"n":2,"edges":[]}`, // disconnected
		`{"n":2,"edges":[[0,1]],"labels":["2",""]}`, // bad label
		`{"n":2,"edges":[[0,5]]}`,                   // out of range
		`not json`,
		`{"n":2,"edges":[[0,1]]} trailing garbage`, // data after the object
		`{"n":2,"edges":[[0,1]]}{"n":1}`,           // second object
	}
	for _, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", in)
		}
	}
}

func TestDecodeMinimal(t *testing.T) {
	t.Parallel()
	g, err := Decode(strings.NewReader(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1 || g.Label(0) != "" {
		t.Fatal("minimal graph wrong")
	}
}
