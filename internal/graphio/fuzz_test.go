package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph fuzzes the JSON decoder with the malformed-input corpus
// behind cmd/lph's exit-2 handling — trailing data after the object,
// truncated arrays, second objects — plus well-formed graphs. The
// invariant: Decode never panics, and either returns an error or a graph
// that survives an encode/decode round trip unchanged.
func FuzzReadGraph(f *testing.F) {
	for _, seed := range []string{
		`{"n":3,"edges":[[0,1],[1,2]],"labels":["1","0","1"]}`,
		`{"n":1}`,
		`{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}`,
		// The malformed corpus from the exit-2 fix:
		`{"n":2,"edges":[[0,1]]} trailing garbage`,
		`{"n":2,"edges":[[0,1]]}{"n":1}`,
		`{"n":2,"edges":[[0,1]`,
		`{"n":3,"edges":[[0,1],[1,`,
		`{"n":2,"edges":[[0,1]],"labels":["1"`,
		`{"n":2,"edges":[[0,5]]}`,
		`{"n":0}`,
		`not json`,
		``,
		`[[0,1]]`,
		`{"n":-1,"edges":[[0,1]]}`,
		`{"n":2,"edges":[[0,1]],"labels":["2",""]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Decode(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatalf("Decode returned both a graph and %v", err)
			}
			return
		}
		// Decoded graphs must be valid: re-encoding and re-decoding must
		// succeed and reproduce the same graph.
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			t.Fatalf("decoded graph does not re-encode: %v", err)
		}
		h, err := Decode(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-encoded graph does not decode: %v\n%s", err, buf.String())
		}
		if !g.Equal(h) {
			t.Fatalf("round trip changed the graph:\n%v\nvs\n%v", g, h)
		}
	})
}
