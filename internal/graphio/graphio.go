// Package graphio serializes labeled graphs as JSON for the command-line
// tools and examples.
package graphio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
)

// JSON is the on-disk graph format:
//
//	{"n": 3, "edges": [[0,1],[1,2]], "labels": ["1","0","1"]}
//
// Labels may be omitted (all empty).
type JSON struct {
	N      int      `json:"n"`
	Edges  [][2]int `json:"edges"`
	Labels []string `json:"labels,omitempty"`
}

// Encode writes g to w.
func Encode(w io.Writer, g *graph.Graph) error {
	out := JSON{N: g.N(), Labels: g.Labels()}
	for _, e := range g.Edges() {
		out.Edges = append(out.Edges, [2]int{e.U, e.V})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Decode reads a graph from r. The input must be exactly one JSON graph
// object: trailing data after it is rejected, so malformed files fail
// loudly instead of being silently truncated.
func Decode(r io.Reader) (*graph.Graph, error) {
	var in JSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	switch _, err := dec.Token(); {
	case err == io.EOF:
		// Exactly one object, as required.
	case err == nil:
		return nil, fmt.Errorf("graphio: trailing data after graph JSON")
	default:
		return nil, fmt.Errorf("graphio: trailing data after graph JSON: %w", err)
	}
	edges := make([]graph.Edge, len(in.Edges))
	for i, e := range in.Edges {
		edges[i] = graph.Edge{U: e[0], V: e[1]}
	}
	return graph.New(in.N, edges, in.Labels)
}
