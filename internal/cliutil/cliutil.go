// Package cliutil is the flag plumbing shared by the experiment-suite
// binaries (cmd/figures, cmd/exptimer): the -workers/-only flag pair
// threading into search.Options and the experiment index, under the
// repository-wide exit-code convention (0 = success, 1 = experiment
// failure / mismatch, 2 = usage error).
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/experiments"
)

// ParseSuiteFlags parses the common -workers/-only flag set. ok is
// false on a usage error (the caller exits 2); the usage line has then
// been printed to stderr.
func ParseSuiteFlags(prog string, args []string, stderr io.Writer, usage string) (workers int, only []string, ok bool) {
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	fs.SetOutput(io.Discard) // we print our own usage line
	w := fs.Int("workers", 0, "worker-pool size (0 = all CPUs, 1 = sequential)")
	o := fs.String("only", "", "comma-separated experiment ids (default: all)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 || *w < 0 {
		fmt.Fprintln(stderr, usage)
		return 0, nil, false
	}
	if *o != "" {
		only = strings.Split(*o, ",")
	}
	return *w, only, true
}

// SelectSpecs resolves experiment ids against the index; an empty
// selection means the whole suite. ok is false (with a diagnostic on
// stderr) for an unknown id.
func SelectSpecs(prog string, only []string, stderr io.Writer) ([]experiments.Spec, bool) {
	if len(only) == 0 {
		return experiments.Index(), true
	}
	specs := make([]experiments.Spec, 0, len(only))
	for _, id := range only {
		s, found := experiments.FindSpec(strings.TrimSpace(id))
		if !found {
			fmt.Fprintf(stderr, "%s: unknown experiment %q\n", prog, id)
			return nil, false
		}
		specs = append(specs, s)
	}
	return specs, true
}
