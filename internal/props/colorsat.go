package props

import (
	"strconv"

	"repro/internal/graph"
	"repro/internal/sat"
)

// KColorableSAT decides k-colorability by encoding the instance as CNF and
// running the DPLL solver. Unit propagation makes this far more effective
// than naive color backtracking on the large, highly constrained gadget
// graphs produced by the Theorem 23 reduction — especially for
// *refuting* colorability, where the plain backtracker degenerates.
func KColorableSAT(g *graph.Graph, k int) bool {
	var cnf sat.CNF
	colorVar := func(u, c int) string {
		return "c" + strconv.Itoa(u) + "_" + strconv.Itoa(c)
	}
	for u := 0; u < g.N(); u++ {
		// At least one color.
		cl := make(sat.Clause, 0, k)
		for c := 0; c < k; c++ {
			cl = append(cl, sat.Literal{Name: colorVar(u, c)})
		}
		cnf = append(cnf, cl)
		// At most one color.
		for c1 := 0; c1 < k; c1++ {
			for c2 := c1 + 1; c2 < k; c2++ {
				cnf = append(cnf, sat.Clause{
					{Name: colorVar(u, c1), Neg: true},
					{Name: colorVar(u, c2), Neg: true},
				})
			}
		}
	}
	for _, e := range g.Edges() {
		for c := 0; c < k; c++ {
			cnf = append(cnf, sat.Clause{
				{Name: colorVar(e.U, c), Neg: true},
				{Name: colorVar(e.V, c), Neg: true},
			})
		}
	}
	// Symmetry breaking: pin node 0's color.
	cnf = append(cnf, sat.Clause{{Name: colorVar(0, 0)}})
	return sat.Solve(cnf)
}
