package props

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sat"
)

func TestSelectionProperties(t *testing.T) {
	t.Parallel()
	g := graph.Path(3)
	all := g.MustWithLabels([]string{"1", "1", "1"})
	one := g.MustWithLabels([]string{"0", "1", "0"})
	none := g.MustWithLabels([]string{"0", "0", "0"})
	two := g.MustWithLabels([]string{"1", "1", "0"})
	long := g.MustWithLabels([]string{"11", "1", "1"}) // "11" is not "1"

	if !AllSelected(all) || AllSelected(one) || AllSelected(long) {
		t.Fatal("AllSelected wrong")
	}
	if NotAllSelected(all) || !NotAllSelected(none) {
		t.Fatal("NotAllSelected wrong")
	}
	if !OneSelected(one) || OneSelected(two) || OneSelected(none) || OneSelected(all) {
		t.Fatal("OneSelected wrong")
	}
}

func TestEulerian(t *testing.T) {
	t.Parallel()
	if !Eulerian(graph.Cycle(5)) {
		t.Fatal("cycles are Eulerian")
	}
	if Eulerian(graph.Path(3)) {
		t.Fatal("paths with odd-degree endpoints are not Eulerian")
	}
	if !Eulerian(graph.Complete(5)) || Eulerian(graph.Complete(4)) {
		t.Fatal("K5 Eulerian, K4 not")
	}
	if !Eulerian(graph.Single("1")) {
		t.Fatal("single node is trivially Eulerian")
	}
}

func TestHamiltonian(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"C5", graph.Cycle(5), true},
		{"P4", graph.Path(4), false},
		{"K4", graph.Complete(4), true},
		{"K1", graph.Single(""), false},
		{"P2", graph.Path(2), false},
		{"star", graph.Star(4), false},
		{"grid2x3", graph.Grid(2, 3), true},
		{"grid3x3", graph.Grid(3, 3), false}, // odd bipartite grid
	}
	for _, tt := range tests {
		if got := Hamiltonian(tt.g); got != tt.want {
			t.Errorf("%s: Hamiltonian = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestColorability(t *testing.T) {
	t.Parallel()
	if !TwoColorable(graph.Cycle(6)) || TwoColorable(graph.Cycle(5)) {
		t.Fatal("2-colorability of cycles wrong")
	}
	if !ThreeColorable(graph.Cycle(5)) || ThreeColorable(graph.Complete(4)) {
		t.Fatal("3-colorability wrong")
	}
	if !KColorable(graph.Complete(4), 4) {
		t.Fatal("K4 is 4-colorable")
	}
	coloring, ok := KColoring(graph.Cycle(5), 3)
	if !ok {
		t.Fatal("C5 should be 3-colorable")
	}
	g := graph.Cycle(5)
	for _, e := range g.Edges() {
		if coloring[e.U] == coloring[e.V] {
			t.Fatal("returned coloring not proper")
		}
	}
}

// TestTwoColorableMatchesKColorable cross-checks the linear-time bipartite
// test against backtracking.
func TestTwoColorableMatchesKColorable(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		g := graph.RandomConnected(2+rng.Intn(7), 0.35, rng)
		if TwoColorable(g) != KColorable(g, 2) {
			t.Fatalf("mismatch on %v", g)
		}
	}
}

func TestAcyclicOddAutomorphic(t *testing.T) {
	t.Parallel()
	if !Acyclic(graph.Path(4)) || Acyclic(graph.Cycle(4)) {
		t.Fatal("Acyclic wrong")
	}
	if !Odd(graph.Path(3)) || Odd(graph.Path(4)) {
		t.Fatal("Odd wrong")
	}
	if !Automorphic(graph.Cycle(4)) {
		t.Fatal("C4 has nontrivial automorphisms")
	}
	// An asymmetric labeled path: all labels distinct kills symmetry.
	g := graph.Path(3).MustWithLabels([]string{"0", "1", "00"})
	if Automorphic(g) {
		t.Fatal("distinctly labeled path has no nontrivial automorphism")
	}
	if !Automorphic(graph.Path(3)) {
		t.Fatal("unlabeled P3 has a flip automorphism")
	}
}

func TestSatGraph(t *testing.T) {
	t.Parallel()
	mk := func(formulas ...string) *graph.Graph {
		fs := make([]sat.Formula, len(formulas))
		for i, s := range formulas {
			fs[i] = sat.MustParse(s)
		}
		bg, err := sat.NewBooleanGraph(graph.Path(len(formulas)), fs)
		if err != nil {
			t.Fatal(err)
		}
		return bg.G
	}
	if !SatGraph(mk("P1|~P2|~P3", "P3|P4|~P5")) {
		t.Fatal("Figure 4 instance should be satisfiable")
	}
	if SatGraph(mk("P", "~P")) {
		t.Fatal("adjacent conflict should be unsatisfiable")
	}
	// Garbage labels are a no-instance.
	if SatGraph(graph.Path(2).MustWithLabels([]string{"01", "1"})) {
		t.Fatal("undecodable labels must be rejected")
	}
}

// TestFigure1 reproduces Example 1: Figure 1a is 3-colorable but not
// 3-round 3-colorable; Figure 1b is both.
func TestFigure1(t *testing.T) {
	t.Parallel()
	no := graph.Figure1NoInstance()
	yes := graph.Figure1YesInstance()
	if !ThreeColorable(no) || !ThreeColorable(yes) {
		t.Fatal("both Figure 1 graphs are classically 3-colorable")
	}
	if ThreeRoundThreeColorable(no) {
		t.Fatal("Figure 1a must NOT be 3-round 3-colorable (Adam wins)")
	}
	if !ThreeRoundThreeColorable(yes) {
		t.Fatal("Figure 1b must be 3-round 3-colorable (Eve wins)")
	}
}

// TestThreeRoundImpliesThreeColorable: if Eve wins the 3-round game, the
// graph is in particular 3-colorable.
func TestThreeRoundImpliesThreeColorable(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomConnected(3+rng.Intn(4), 0.4, rng)
		if ThreeRoundThreeColorable(g) && !ThreeColorable(g) {
			t.Fatalf("3-round winner not 3-colorable: %v", g)
		}
	}
}

// TestThreeRoundNoMiddleNodes: when no node has degree 2, Adam has no move,
// so the game reduces to ordinary 3-colorability.
func TestThreeRoundNoMiddleNodes(t *testing.T) {
	t.Parallel()
	k4 := graph.Complete(4) // all degrees 3
	if ThreeRoundThreeColorable(k4) != ThreeColorable(k4) {
		t.Fatal("no-degree-2 case should reduce to 3-colorability")
	}
	star := graph.Star(5) // degrees 4 and 1
	if ThreeRoundThreeColorable(star) != ThreeColorable(star) {
		t.Fatal("star case should reduce to 3-colorability")
	}
}

func TestComplements(t *testing.T) {
	t.Parallel()
	g := graph.Cycle(5)
	if NonEulerian(g) || !NonHamiltonian(graph.Path(3)) {
		t.Fatal("complement helpers wrong")
	}
	if !NonTwoColorable(graph.Cycle(5)) || NonTwoColorable(graph.Cycle(6)) {
		t.Fatal("NonTwoColorable wrong")
	}
	if NonThreeColorable(graph.Cycle(5)) || !NonThreeColorable(graph.Complete(4)) {
		t.Fatal("NonThreeColorable wrong")
	}
}

// TestKColorableSATMatchesBacktracking cross-checks the DPLL encoding
// against the exact backtracker on random graphs.
func TestKColorableSATMatchesBacktracking(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		g := graph.RandomConnected(2+rng.Intn(6), 0.5, rng)
		for k := 2; k <= 3; k++ {
			if KColorableSAT(g, k) != KColorable(g, k) {
				t.Fatalf("mismatch for k=%d on %v", k, g)
			}
		}
	}
}
