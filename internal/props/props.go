// Package props provides exact centralized deciders for the graph
// properties studied in the paper. They serve as ground truths ("oracles")
// against which the distributed machines, reductions, games and logical
// formulas of the other packages are validated. Several are exponential-time
// backtracking procedures; they are meant for the small instances used in
// tests, experiments and benchmarks.
package props

import (
	"repro/internal/graph"
	"repro/internal/sat"
)

// AllSelected reports the all-selected property of Section 5.2: every node
// is labeled with the bit string "1".
func AllSelected(g *graph.Graph) bool {
	for u := 0; u < g.N(); u++ {
		if g.Label(u) != "1" {
			return false
		}
	}
	return true
}

// NotAllSelected is the complement of AllSelected.
func NotAllSelected(g *graph.Graph) bool { return !AllSelected(g) }

// OneSelected reports the one-selected property of Example 8: exactly one
// node is labeled "1".
func OneSelected(g *graph.Graph) bool {
	count := 0
	for u := 0; u < g.N(); u++ {
		if g.Label(u) == "1" {
			count++
		}
	}
	return count == 1
}

// Eulerian reports whether g contains an Eulerian cycle. By Euler's theorem
// (used in the proof of Proposition 18), a connected graph is Eulerian if
// and only if all its nodes have even degree.
func Eulerian(g *graph.Graph) bool {
	for u := 0; u < g.N(); u++ {
		if g.Degree(u)%2 != 0 {
			return false
		}
	}
	return true
}

// NonEulerian is the complement of Eulerian.
func NonEulerian(g *graph.Graph) bool { return !Eulerian(g) }

// Hamiltonian reports whether g contains a Hamiltonian cycle (a cycle
// passing through each node exactly once). Graphs with fewer than three
// nodes are not Hamiltonian. Exponential backtracking.
func Hamiltonian(g *graph.Graph) bool {
	n := g.N()
	if n < 3 {
		return false
	}
	// A Hamiltonian cycle needs every degree >= 2; this prunes the pendant
	// gadgets of Proposition 19 instantly.
	for u := 0; u < n; u++ {
		if g.Degree(u) < 2 {
			return false
		}
	}
	visited := make([]bool, n)
	visited[0] = true
	// prune reports whether the partial path ending at endpoint can still
	// be extended to a Hamiltonian cycle: every unvisited node needs at
	// least two usable connections (unvisited neighbors, the current
	// endpoint, or the start node 0), and the unvisited region together
	// with the endpoint and start must stay connected.
	prune := func(endpoint int) bool {
		for w := 0; w < n; w++ {
			if visited[w] {
				continue
			}
			usable := 0
			for _, x := range g.Neighbors(w) {
				if !visited[x] || x == endpoint || x == 0 {
					usable++
				}
			}
			if usable < 2 {
				return true
			}
		}
		// Connectivity of {unvisited} ∪ {endpoint}: BFS from endpoint
		// through unvisited nodes must reach every unvisited node.
		seen := make([]bool, n)
		stack := []int{endpoint}
		seen[endpoint] = true
		reached := 0
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, y := range g.Neighbors(x) {
				if !seen[y] && !visited[y] {
					seen[y] = true
					reached++
					stack = append(stack, y)
				}
			}
		}
		unvisited := 0
		for w := 0; w < n; w++ {
			if !visited[w] {
				unvisited++
			}
		}
		return reached != unvisited
	}
	var dfs func(u, count int) bool
	dfs = func(u, count int) bool {
		if count == n {
			return g.HasEdge(u, 0)
		}
		if prune(u) {
			return false
		}
		for _, v := range g.Neighbors(u) {
			if !visited[v] {
				visited[v] = true
				if dfs(v, count+1) {
					return true
				}
				visited[v] = false
			}
		}
		return false
	}
	return dfs(0, 1)
}

// NonHamiltonian is the complement of Hamiltonian.
func NonHamiltonian(g *graph.Graph) bool { return !Hamiltonian(g) }

// KColorable reports whether g has a proper k-coloring. Backtracking with
// first-fail ordering; exact.
func KColorable(g *graph.Graph, k int) bool {
	_, ok := KColoring(g, k)
	return ok
}

// KColoring returns a proper k-coloring of g if one exists.
func KColoring(g *graph.Graph, k int) ([]int, bool) {
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	var dfs func(u int) bool
	dfs = func(u int) bool {
		if u == n {
			return true
		}
		for c := 0; c < k; c++ {
			ok := true
			for _, v := range g.Neighbors(u) {
				if colors[v] == c {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			colors[u] = c
			if dfs(u + 1) {
				return true
			}
			colors[u] = -1
		}
		return false
	}
	if !dfs(0) {
		return nil, false
	}
	return colors, true
}

// TwoColorable reports bipartiteness via BFS 2-coloring (linear time).
func TwoColorable(g *graph.Graph) bool {
	side := make([]int, g.N())
	for i := range side {
		side[i] = -1
	}
	side[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if side[v] < 0 {
				side[v] = 1 - side[u]
				queue = append(queue, v)
			} else if side[v] == side[u] {
				return false
			}
		}
	}
	return true
}

// NonTwoColorable is the complement of TwoColorable; equivalently, g
// contains an odd cycle (used in Section 5.2).
func NonTwoColorable(g *graph.Graph) bool { return !TwoColorable(g) }

// ThreeColorable reports 3-colorability.
func ThreeColorable(g *graph.Graph) bool { return KColorable(g, 3) }

// NonThreeColorable is the complement of ThreeColorable.
func NonThreeColorable(g *graph.Graph) bool { return !ThreeColorable(g) }

// Acyclic reports whether g contains no cycles. Since our graphs are
// connected, this holds precisely when g is a tree (|E| = |V|-1).
func Acyclic(g *graph.Graph) bool { return g.NumEdges() == g.N()-1 }

// Odd reports whether g has an odd number of nodes (Section 5.2).
func Odd(g *graph.Graph) bool { return g.N()%2 == 1 }

// SatGraph decides the sat-graph property of Section 8: the node labels
// decode to Boolean formulas and there exist per-node valuations, each
// satisfying its node's formula, that are consistent across every edge on
// shared variables. Labels that do not decode to formulas make the graph a
// no-instance.
func SatGraph(g *graph.Graph) bool {
	bg, err := sat.DecodeBooleanGraph(g)
	if err != nil {
		return false
	}
	return bg.Satisfiable()
}

// Automorphic reports whether g has a nontrivial automorphism (a
// label-preserving adjacency-preserving permutation other than the
// identity). Used in the Figure 7 discussion. Exponential backtracking.
func Automorphic(g *graph.Graph) bool {
	n := g.N()
	phi := make([]int, n)
	used := make([]bool, n)
	for i := range phi {
		phi[i] = -1
	}
	identity := true
	var dfs func(u int) bool
	dfs = func(u int) bool {
		if u == n {
			return !identity
		}
		for v := 0; v < n; v++ {
			if used[v] || g.Label(u) != g.Label(v) || g.Degree(u) != g.Degree(v) {
				continue
			}
			ok := true
			for w := 0; w < u; w++ {
				if g.HasEdge(u, w) != g.HasEdge(v, phi[w]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			wasIdentity := identity
			if u != v {
				identity = false
			}
			phi[u] = v
			used[v] = true
			if dfs(u + 1) {
				return true
			}
			phi[u] = -1
			used[v] = false
			identity = wasIdentity
		}
		return false
	}
	return dfs(0)
}
