package props

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/search"
)

// spider returns a star of k length-2 legs: the center has degree k
// (Eve's closing block), the k mid nodes have degree 2 (Adam's block),
// and the k leaves have degree 1 (Eve's opening block) — so for k >= 4
// Eve's opening space reaches the engine's parallel threshold and the
// worker pool genuinely engages.
func spider(k int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		mid, leaf := 2*i+1, 2*i+2
		edges = append(edges, graph.Edge{U: 0, V: mid}, graph.Edge{U: mid, V: leaf})
	}
	return graph.MustNew(2*k+1, edges, nil)
}

// TestThreeRoundParallelMatchesSequential asserts that the parallel and
// sequential engines agree on the 3-round 3-colorability game. On the
// Figure 1 instances every block is below the parallel threshold and
// both engines take the same sequential path; the spider instances are
// large enough that the pool actually spawns, so running this under
// -race exercises the worker pool for real.
func TestThreeRoundParallelMatchesSequential(t *testing.T) {
	instances := map[string]struct {
		g    *graph.Graph
		want bool
	}{
		"Figure 1a": {graph.Figure1NoInstance(), false},
		"Figure 1b": {graph.Figure1YesInstance(), true},
		// P4: Adam owns both middle nodes and colors them equal; C6:
		// Adam owns every node; K4: Eve colors everything last but K4
		// has no proper 3-coloring at all; spiders: Adam mirrors a
		// leaf's color onto its mid node.
		"P4":       {graph.Path(4), false},
		"C6":       {graph.Cycle(6), false},
		"K4":       {graph.Complete(4), false},
		"spider 5": {spider(5), false},
		"spider 6": {spider(6), false},
	}
	for name, tt := range instances {
		seq := ThreeRoundThreeColorableOpt(tt.g, search.Sequential())
		par := ThreeRoundThreeColorableOpt(tt.g, search.Parallel(0))
		if seq != par {
			t.Errorf("%s: parallel=%v sequential=%v", name, par, seq)
		}
		if seq != tt.want {
			t.Errorf("%s: game value %v, want %v", name, seq, tt.want)
		}
	}
}
