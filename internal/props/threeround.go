package props

import "repro/internal/graph"

// ThreeRoundThreeColorable decides the 3-round 3-colorability game of
// Example 1 (after Ajtai, Fagin, and Stockmeyer): first Eve chooses the
// colors of all degree-1 nodes, then Adam chooses the colors of all
// degree-2 nodes, and finally Eve chooses the colors of all remaining
// nodes. The graph has the property iff Eve can always force a proper
// 3-coloring. Exhaustive minimax over the three color blocks.
func ThreeRoundThreeColorable(g *graph.Graph) bool {
	n := g.N()
	var deg1, deg2, rest []int
	for u := 0; u < n; u++ {
		switch g.Degree(u) {
		case 1:
			deg1 = append(deg1, u)
		case 2:
			deg2 = append(deg2, u)
		default:
			rest = append(rest, u)
		}
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}

	properSoFar := func(nodes []int) bool {
		for _, u := range nodes {
			for _, v := range g.Neighbors(u) {
				if colors[v] >= 0 && colors[v] == colors[u] {
					return false
				}
			}
		}
		return true
	}

	// forEachColoring enumerates all 3^len(nodes) colorings of nodes and
	// calls f for each; it stops early when f returns true and reports
	// whether any call returned true.
	var forEachColoring func(nodes []int, i int, f func() bool) bool
	forEachColoring = func(nodes []int, i int, f func() bool) bool {
		if i == len(nodes) {
			return f()
		}
		for c := 0; c < 3; c++ {
			colors[nodes[i]] = c
			if forEachColoring(nodes, i+1, f) {
				for j := i; j < len(nodes); j++ {
					colors[nodes[j]] = -1
				}
				return true
			}
		}
		for j := i; j < len(nodes); j++ {
			colors[nodes[j]] = -1
		}
		return false
	}

	// Eve's final move: does some coloring of rest complete a proper
	// 3-coloring?
	eveFinishes := func() bool {
		return forEachColoring(rest, 0, func() bool {
			return properSoFar(rest) && properSoFar(deg1) && properSoFar(deg2)
		})
	}
	// Adam's move: he wins if some coloring of deg2 leaves Eve stuck.
	adamStuck := func() bool {
		adamWins := forEachColoring(deg2, 0, func() bool {
			return !eveFinishes()
		})
		return adamWins
	}
	// Eve's first move: some coloring of deg1 from which Adam cannot win.
	return forEachColoring(deg1, 0, func() bool {
		return !adamStuck()
	})
}
