package props

import (
	"repro/internal/graph"
	"repro/internal/search"
)

// ThreeRoundThreeColorable decides the 3-round 3-colorability game of
// Example 1 (after Ajtai, Fagin, and Stockmeyer): first Eve chooses the
// colors of all degree-1 nodes, then Adam chooses the colors of all
// degree-2 nodes, and finally Eve chooses the colors of all remaining
// nodes. The graph has the property iff Eve can always force a proper
// 3-coloring. Exhaustive minimax over the three color blocks, run on
// the package default engine (parallel across all CPUs);
// ThreeRoundThreeColorableOpt selects the engine.
func ThreeRoundThreeColorable(g *graph.Graph) bool {
	return ThreeRoundThreeColorableOpt(g, search.Default())
}

// ThreeRoundThreeColorableOpt is ThreeRoundThreeColorable under explicit
// search options. The pool is handed to exactly one minimax level:
// Eve's opening block (the outermost existential) when it is large
// enough to split, otherwise Adam's block — each worker evaluates the
// levels below it sequentially on worker-local color state. On
// instances where every block is tiny (e.g. both Figure 1 graphs, whose
// spaces are 3·9·27 assignments) the engine's small-space fallback
// makes both engines take the same sequential path. Do not set
// Options.Ctx here: on cancellation the Boolean returned is meaningless
// and the error flagging it is discarded — callers needing cancellation
// should drive the search package directly.
func ThreeRoundThreeColorableOpt(g *graph.Graph, o search.Options) bool {
	t := newThreeRoundGame(g)
	outerSpace := search.Uniform(len(t.deg1), 3)
	outerOpts := o
	adamOpts := o
	if search.Splittable(o, outerSpace) {
		adamOpts.Workers = 1
	} else {
		outerOpts.Workers = 1
	}
	won, _ := search.Exists(outerOpts, outerSpace, func(asm []int) bool {
		colors, put := t.scratch.Get()
		defer put()
		for i := range colors {
			colors[i] = -1
		}
		for i, u := range t.deg1 {
			colors[u] = asm[i]
		}
		return !t.adamStuck(adamOpts, colors)
	})
	return won
}

// threeRoundGame is the immutable part of the minimax: the graph, its
// three color blocks partitioned by degree, and the pooled color
// buffers all levels draw from (every user fully initializes the buffer
// it takes, so the pool needs no cross-level invariant).
type threeRoundGame struct {
	g                *graph.Graph
	deg1, deg2, rest []int
	scratch          *search.Scratch[[]int]
}

func newThreeRoundGame(g *graph.Graph) *threeRoundGame {
	t := &threeRoundGame{g: g}
	for u, d := range g.Degrees() {
		switch d {
		case 1:
			t.deg1 = append(t.deg1, u)
		case 2:
			t.deg2 = append(t.deg2, u)
		default:
			t.rest = append(t.rest, u)
		}
	}
	t.scratch = search.NewScratch(func() []int { return make([]int, g.N()) })
	return t
}

// properSoFar reports whether no node of the block conflicts with an
// already-colored neighbor.
func (t *threeRoundGame) properSoFar(colors []int, nodes []int) bool {
	for _, u := range nodes {
		for _, v := range t.g.Neighbors(u) {
			if colors[v] >= 0 && colors[v] == colors[u] {
				return false
			}
		}
	}
	return true
}

// adamStuck reports whether some coloring of the degree-2 block leaves
// Eve without a proper completion. colors carries Eve's opening block
// and is never mutated: each (possibly concurrent) Adam coloring is
// written to a pooled worker-local copy.
func (t *threeRoundGame) adamStuck(o search.Options, colors []int) bool {
	stuck, _ := search.Exists(o, search.Uniform(len(t.deg2), 3), func(asm []int) bool {
		c, put := t.scratch.Get()
		defer put()
		copy(c, colors)
		for i, u := range t.deg2 {
			c[u] = asm[i]
		}
		return !t.eveFinishes(c)
	})
	return stuck
}

// eveFinishes reports whether some coloring of the remaining block
// completes a proper 3-coloring. It owns (and mutates) colors and
// always runs sequentially — it is the innermost level.
func (t *threeRoundGame) eveFinishes(colors []int) bool {
	done, _ := search.Exists(search.Sequential(), search.Uniform(len(t.rest), 3), func(asm []int) bool {
		for i, u := range t.rest {
			colors[u] = asm[i]
		}
		return t.properSoFar(colors, t.rest) &&
			t.properSoFar(colors, t.deg1) && t.properSoFar(colors, t.deg2)
	})
	return done
}
