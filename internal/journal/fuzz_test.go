package journal

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzReplayJournal fuzzes the segment decoder over arbitrary bytes —
// truncated tails, bit flips, garbage appended to clean prefixes — with
// the replay contract as the invariant set:
//
//   - DecodeAll never panics, whatever the input;
//   - the clean offset is within bounds and equals the decoded frames'
//     total size, so truncating there is always safe;
//   - decoding the clean prefix again reproduces exactly the same
//     records (recovery is idempotent): every record before the first
//     corruption is recovered, and bytes after it change nothing.
//
// Seeds are real segments (clean, torn, bit-flipped, garbage-extended),
// so mutation starts from frames that actually decode.
func FuzzReplayJournal(f *testing.F) {
	var seg bytes.Buffer
	for _, rec := range []Record{
		{Type: TypeSubmit, ID: "j1", Seq: 1, Kind: "sweep", Spec: json.RawMessage(`{"job":"sweep"}`), Time: 1000},
		{Type: TypeStart, ID: "j1", Time: 1001},
		{Type: TypeDone, ID: "j1", Result: json.RawMessage(`{"ok":true}`), Done: 2, Total: 2, Time: 1002},
		{Type: TypeSubmit, ID: "j2", Seq: 2, Kind: "experiment", Spec: json.RawMessage(`{"job":"experiment","name":"figure5"}`), Time: 1003},
		{Type: TypeCancelled, ID: "j2", Time: 1004},
	} {
		frame, err := encodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		seg.Write(frame)
	}
	clean := seg.Bytes()
	f.Add(clean)
	f.Add(clean[:len(clean)-5])           // torn tail
	f.Add(clean[:3])                      // shorter than one header
	f.Add([]byte{})                       // empty segment
	f.Add([]byte("not a journal at all")) // pure garbage
	flipped := append([]byte{}, clean...)
	flipped[len(flipped)/2] ^= 0x20 // bit flip mid-stream
	f.Add(flipped)
	f.Add(append(append([]byte{}, clean...), 0xDE, 0xAD, 0xBE, 0xEF)) // garbage appended

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, sizes, clean := DecodeAll(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean offset %d out of range [0,%d]", clean, len(data))
		}
		if len(recs) != len(sizes) {
			t.Fatalf("%d records but %d sizes", len(recs), len(sizes))
		}
		var total int64
		for _, s := range sizes {
			total += s
		}
		if total != int64(clean) {
			t.Fatalf("frame sizes sum to %d, clean offset is %d", total, clean)
		}
		recs2, _, clean2 := DecodeAll(data[:clean])
		if clean2 != clean {
			t.Fatalf("re-decoding the clean prefix moved the offset: %d -> %d", clean, clean2)
		}
		if !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("recovery not idempotent:\nfirst  %+v\nsecond %+v", recs, recs2)
		}
	})
}
