// Package journal is the durable half of the async job engine: an
// append-only, fsync-on-record log of job lifecycle events from which
// the engine's state is deterministically reconstructed after a crash.
// The design is the accountability discipline of an append-only ledger
// — current state is never authoritative on its own; it is whatever
// replaying the log yields.
//
// Framing. Each record is one frame on disk:
//
//	+----------------+----------------+------------------------+
//	| length (4B BE) | CRC32 (4B BE)  | payload (length bytes) |
//	+----------------+----------------+------------------------+
//
// The payload is the Record as compact JSON and the checksum is
// IEEE CRC32 over the payload. A torn tail write — a partial frame, a
// length that runs past the file, a checksum mismatch, or unparsable
// JSON — ends replay at the last clean frame: Open truncates the
// segment there and drops any later segments, so a crash mid-append
// loses at most the record being written, never the log.
//
// Segments. The log is a directory of numbered segment files
// (jrnl-00000001.seg, …). Appends go to the highest-numbered segment
// and roll to a fresh one once it exceeds SegmentBytes. Byte ownership
// is tracked per job id; Retire(id) moves a job's bytes to the dead
// count, and once dead bytes exceed CompactBytes the owner rewrites
// the live records into a single fresh segment (Compact) and deletes
// the old files, so the journal is bounded by the live set, not by
// history.
package journal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Type tags one lifecycle record.
type Type string

const (
	TypeSubmit    Type = "submit"
	TypeStart     Type = "start"
	TypeDone      Type = "done"
	TypeFailed    Type = "failed"
	TypeCancelled Type = "cancelled"
	// TypeCheckpoint is the compaction barrier: everything before it in
	// the log is stale and discarded at Open, and its Seq carries the
	// admission-sequence watermark, so ids are never reused even after
	// every journaled job has been compacted away. Compact callers lead
	// their live set with one.
	TypeCheckpoint Type = "checkpoint"
)

// Record is one journal entry. Submit records carry the admission
// sequence, kind, spec (the opaque re-submittable job description),
// and creation time; terminal records carry the outcome, the progress
// counters, and the finish time. Times are Unix nanoseconds so the
// payload is plain JSON with no layout ambiguity.
type Record struct {
	Type Type            `json:"type"`
	ID   string          `json:"id"`
	Seq  int64           `json:"seq,omitempty"`
	Kind string          `json:"kind,omitempty"`
	Spec json.RawMessage `json:"spec,omitempty"`
	// Idem is the client's idempotency key, carried on submit records so
	// replay can rebind key → job id: a duplicate submission after a
	// crash or drain/restart answers with the original job instead of
	// running the work a second time.
	Idem   string          `json:"idem,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Done   int64           `json:"done,omitempty"`
	Total  int64           `json:"total,omitempty"`
	Time   int64           `json:"time"`
}

// When returns the record's timestamp.
func (r Record) When() time.Time { return time.Unix(0, r.Time) }

// frameHeader is the fixed per-record overhead: 4-byte length plus
// 4-byte CRC32, both big-endian.
const frameHeader = 8

// maxPayloadBytes rejects absurd frame lengths during decode, so a
// corrupted length field cannot ask for gigabytes.
const maxPayloadBytes = 16 << 20

// Options tunes a Journal. The zero value is usable: 1 MiB segments,
// compaction once 256 KiB of dead bytes accumulate.
type Options struct {
	// SegmentBytes rolls the active segment once it exceeds this size;
	// 0 means 1 MiB.
	SegmentBytes int64
	// CompactBytes is the dead-byte threshold beyond which ShouldCompact
	// reports true; 0 means 256 KiB.
	CompactBytes int64
}

// Stats is the journal's bookkeeping, surfaced on /v1/stats and
// /metrics by the service layer.
type Stats struct {
	// Segments is the number of segment files on disk.
	Segments int `json:"segments"`
	// LiveBytes is the on-disk footprint still owned by live jobs.
	LiveBytes int64 `json:"live_bytes"`
	// DeadBytes is the footprint of retired jobs, reclaimed by the next
	// compaction.
	DeadBytes int64 `json:"dead_bytes"`
	// Appends counts records written over the journal's lifetime.
	Appends uint64 `json:"appends"`
	// Compactions counts completed compaction passes.
	Compactions uint64 `json:"compactions"`
	// Truncated counts bytes dropped at Open by torn-tail recovery.
	Truncated int64 `json:"truncated_bytes"`
}

// Journal is an open journal directory. All methods are safe for
// concurrent use.
type Journal struct {
	mu        sync.Mutex
	dir       string
	opts      Options
	active    *os.File
	activeNum int
	activeLen int64
	segments  []int // sorted segment numbers, including the active one

	totalBytes int64
	bytesByID  map[string]int64
	deadBytes  int64
	appends    uint64
	compacts   uint64
	truncated  int64

	replay []Record // records recovered at Open, handed to the engine once
	closed bool
	broken bool // a failed append could not be repaired; see Append
}

func segName(n int) string { return fmt.Sprintf("jrnl-%08d.seg", n) }

// segNum parses a segment file name; ok is false for foreign files.
func segNum(name string) (int, bool) {
	rest, found := strings.CutPrefix(name, "jrnl-")
	if !found {
		return 0, false
	}
	rest, found = strings.CutSuffix(rest, ".seg")
	if !found {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Open opens (creating if needed) the journal directory, replays every
// segment in order, repairs the tail — the first torn or corrupt frame
// truncates its segment and drops all later segments, keeping the log
// a clean prefix — and leaves the journal ready to append. The
// recovered records are available once through Replay.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = 256 << 10
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var nums []int
	for _, ent := range entries {
		if n, ok := segNum(ent.Name()); ok && !ent.IsDir() {
			nums = append(nums, n)
		}
		// A .tmp file is a compaction that crashed before its rename:
		// never part of the log, safe to clear.
		if strings.HasSuffix(ent.Name(), ".seg.tmp") && !ent.IsDir() {
			_ = os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
	sort.Ints(nums)

	j := &Journal{dir: dir, opts: opts, bytesByID: make(map[string]int64)}
	for i, n := range nums {
		data, err := os.ReadFile(filepath.Join(dir, segName(n)))
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		recs, sizes, clean := DecodeAll(data)
		for k, rec := range recs {
			if rec.Type == TypeCheckpoint {
				// Compaction barrier: everything before it is stale — even
				// records from orphaned older segments a failed cleanup
				// left behind.
				j.replay = nil
				j.bytesByID = make(map[string]int64)
				j.totalBytes = 0
			}
			j.replay = append(j.replay, rec)
			j.bytesByID[rec.ID] += sizes[k]
			j.totalBytes += sizes[k]
		}
		j.segments = append(j.segments, n)
		if clean < len(data) {
			// Torn or corrupt tail: keep the clean prefix of this segment
			// and drop everything after the corruption horizon, including
			// later segments — the log stays a clean prefix of history.
			j.truncated += int64(len(data) - clean)
			if err := os.Truncate(filepath.Join(dir, segName(n)), int64(clean)); err != nil {
				return nil, fmt.Errorf("journal: repair %s: %w", segName(n), err)
			}
			for _, later := range nums[i+1:] {
				st, err := os.Stat(filepath.Join(dir, segName(later)))
				if err == nil {
					j.truncated += st.Size()
				}
				if err := os.Remove(filepath.Join(dir, segName(later))); err != nil {
					return nil, fmt.Errorf("journal: repair %s: %w", segName(later), err)
				}
			}
			break
		}
	}
	if len(j.segments) == 0 {
		j.segments = []int{1}
	}
	j.activeNum = j.segments[len(j.segments)-1]
	f, err := os.OpenFile(filepath.Join(dir, segName(j.activeNum)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.active = f
	j.activeLen = st.Size()
	if err := j.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Replay returns the records recovered at Open, in append order, and
// releases them (the engine consumes them exactly once).
func (j *Journal) Replay() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	recs := j.replay
	j.replay = nil
	return recs
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// encodeRecord frames one record: header plus compact-JSON payload.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// DecodeAll scans data as a sequence of frames and returns the decoded
// records, the on-disk size of each, and the clean offset — the byte
// position of the first torn or corrupt frame (len(data) when the
// whole input is clean). It never panics on malformed input; replay
// recovers every record before the first corruption and nothing after.
func DecodeAll(data []byte) (recs []Record, sizes []int64, clean int) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return recs, sizes, off
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if n > maxPayloadBytes || len(data)-off-frameHeader < n {
			return recs, sizes, off
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[off+4:off+8]) {
			return recs, sizes, off
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, sizes, off
		}
		recs = append(recs, rec)
		sizes = append(sizes, int64(frameHeader+n))
		off += frameHeader + n
	}
}

// Append frames rec, writes it to the active segment, and fsyncs before
// returning — once Append returns nil the record survives a crash. The
// active segment rolls to a fresh file once it exceeds SegmentBytes.
//
// A failed write or fsync must not leave a torn frame in the middle of
// the segment: replay stops at the first corruption, so records
// appended after a tear would be acknowledged and then silently
// discarded on the next Open. Append therefore truncates the segment
// back to its last clean length on failure; if even that repair fails,
// the journal marks itself broken and refuses all further appends
// (callers reject submissions / count the errors) rather than risk
// acknowledging unrecoverable records.
func (j *Journal) Append(rec Record) error {
	return j.AppendCtx(context.Background(), rec)
}

// AppendCtx is Append with request attribution: when ctx carries an
// obs trace, the whole append lands as a journal_append span and the
// fsync inside it as journal_fsync, so a slow durable submit is
// distinguishable from a slow evaluation. The context does NOT bound
// the append — durability is not cancellable halfway.
func (j *Journal) AppendCtx(ctx context.Context, rec Record) error {
	sp := obs.StartSpan(ctx, obs.PhaseJournalAppend)
	defer sp.End()
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if j.broken {
		return fmt.Errorf("journal: broken by an earlier unrepairable append failure")
	}
	if _, err := j.active.Write(frame); err != nil {
		j.repairTailLocked()
		return fmt.Errorf("journal: append: %w", err)
	}
	fsp := obs.StartSpan(ctx, obs.PhaseJournalFsync)
	err = j.active.Sync()
	fsp.End()
	if err != nil {
		j.repairTailLocked()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.activeLen += int64(len(frame))
	j.totalBytes += int64(len(frame))
	j.bytesByID[rec.ID] += int64(len(frame))
	j.appends++
	if j.activeLen >= j.opts.SegmentBytes {
		// The record is already durable, so a rotation failure must not
		// fail the append — the caller would disown a record that WILL
		// replay. Rotation simply retries on the next append.
		_ = j.rotateLocked()
	}
	return nil
}

// repairTailLocked cuts the active segment back to its last clean
// length after a failed append, so the possibly-torn frame cannot
// shadow later records at replay. An unrepairable tail breaks the
// journal permanently (fail-stop beats silent data loss).
func (j *Journal) repairTailLocked() {
	if err := j.active.Truncate(j.activeLen); err != nil {
		j.broken = true
		return
	}
	if err := j.active.Sync(); err != nil {
		j.broken = true
	}
}

// rotateLocked starts the next segment. The new file is opened (and
// the directory fsynced) before the old handle is touched, so a
// failure leaves the journal appending to the old segment, never to a
// closed handle; the old handle's close error is irrelevant — its
// contents are already fsynced.
func (j *Journal) rotateLocked() error {
	next := j.activeNum + 1
	f, err := os.OpenFile(filepath.Join(j.dir, segName(next)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	if err := j.syncDir(); err != nil {
		f.Close()
		_ = os.Remove(filepath.Join(j.dir, segName(next)))
		return err
	}
	old := j.active
	j.active = f
	j.activeNum = next
	j.activeLen = 0
	j.segments = append(j.segments, next)
	_ = old.Close()
	return nil
}

// Retire marks a job's records dead: its bytes move to the dead count
// and are reclaimed by the next compaction. Call it once a job will
// never be consulted again (expired from the store, or dropped at
// replay).
func (j *Journal) Retire(id string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n, ok := j.bytesByID[id]; ok {
		j.deadBytes += n
		delete(j.bytesByID, id)
	}
}

// ShouldCompact reports whether dead bytes crossed the compaction
// threshold.
func (j *Journal) ShouldCompact() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadBytes >= j.opts.CompactBytes
}

// Compact rewrites the given live records — the owner's reconstruction
// of every job still worth replaying, led by a TypeCheckpoint barrier
// carrying the sequence watermark — into a single fresh segment and
// deletes all older segments. The new segment is written to a temp
// file, fsynced, and renamed into place before the old files go, so a
// crash at any point leaves either the old log or the new one, never
// neither; and because replay discards everything before a checkpoint,
// an old segment that survives a failed removal is merely wasted disk
// (reclaimed by the next compaction's directory sweep), never wrong
// state.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	newNum := j.activeNum + 1
	tmpPath := filepath.Join(j.dir, segName(newNum)+".tmp")
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	bytesByID := make(map[string]int64, len(live))
	var total int64
	for _, rec := range live {
		frame, err := encodeRecord(rec)
		if err != nil {
			f.Close()
			os.Remove(tmpPath)
			return err
		}
		if _, err := f.Write(frame); err != nil {
			f.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("journal: compact: %w", err)
		}
		bytesByID[rec.ID] += int64(len(frame))
		total += int64(len(frame))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(j.dir, segName(newNum))); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := j.syncDir(); err != nil {
		return err
	}
	// The new segment is durable. Open its append handle BEFORE
	// touching the old one, so a failure here leaves the journal on the
	// old (still complete) log — but then the new segment must go too,
	// or appends to the lower-numbered old active would land before the
	// new checkpoint in replay order and be discarded by it.
	af, err := os.OpenFile(filepath.Join(j.dir, segName(newNum)),
		os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		if rmErr := os.Remove(filepath.Join(j.dir, segName(newNum))); rmErr != nil {
			j.broken = true // can't go forward, can't go back: fail stop
		}
		return fmt.Errorf("journal: compact: %w", err)
	}
	old := j.active
	j.active = af
	j.activeNum = newNum
	j.activeLen = total
	j.segments = []int{newNum}
	_ = old.Close() // contents already fsynced; the handle is done either way
	// Best-effort cleanup by directory listing, so segments orphaned by
	// an earlier failed removal are retried too. A leftover is harmless:
	// replay discards everything before the new checkpoint.
	if ents, err := os.ReadDir(j.dir); err == nil {
		for _, ent := range ents {
			if n, ok := segNum(ent.Name()); ok && n != newNum && !ent.IsDir() {
				_ = os.Remove(filepath.Join(j.dir, ent.Name()))
			}
		}
	}
	_ = j.syncDir()
	j.totalBytes = total
	j.bytesByID = bytesByID
	j.deadBytes = 0
	j.compacts++
	return nil
}

// Stats returns the journal's bookkeeping.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Segments:    len(j.segments),
		LiveBytes:   j.totalBytes - j.deadBytes,
		DeadBytes:   j.deadBytes,
		Appends:     j.appends,
		Compactions: j.compacts,
		Truncated:   j.truncated,
	}
}

// Close closes the active segment. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.active.Close()
}

// syncDir fsyncs the journal directory so segment creation, rename,
// and removal are durable, not just the file contents.
func (j *Journal) syncDir() error {
	d, err := os.Open(j.dir)
	if err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}
