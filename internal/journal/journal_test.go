package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// rec builds a small submit record for test traffic.
func rec(i int) Record {
	return Record{
		Type: TypeSubmit,
		ID:   fmt.Sprintf("j%d", i),
		Seq:  int64(i),
		Kind: "demo",
		Spec: json.RawMessage(`{"job":"demo"}`),
		Time: int64(1000 + i),
	}
}

// segPaths lists the journal's segment files, sorted.
func segPaths(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if _, ok := segNum(e.Name()); ok {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// dirBytes sums the size of every segment file.
func dirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	for _, p := range segPaths(t, dir) {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += st.Size()
	}
	return total
}

func TestAppendReplayRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Replay(); len(got) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(got))
	}
	want := []Record{rec(1), rec(2),
		{Type: TypeStart, ID: "j1", Time: 1100},
		{Type: TypeDone, ID: "j1", Result: json.RawMessage(`{"ok":true}`), Done: 3, Total: 3, Time: 1200},
		{Type: TypeFailed, ID: "j2", Error: "boom", Time: 1300},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Appends != 5 || st.Segments != 1 || st.DeadBytes != 0 || st.LiveBytes == 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Replay()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// Replay hands the records over exactly once.
	if again := j2.Replay(); len(again) != 0 {
		t.Fatalf("second Replay returned %d records", len(again))
	}
}

// TestTornTailTruncated pins the recovery contract: a partial frame at
// the tail is truncated away, every record before it survives, and the
// repaired file appends cleanly.
func TestTornTailTruncated(t *testing.T) {
	t.Parallel()
	for _, cut := range []int{1, 3, 7, 9} {
		t.Run(fmt.Sprintf("cut-%d", cut), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			j, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 3; i++ {
				if err := j.Append(rec(i)); err != nil {
					t.Fatal(err)
				}
			}
			j.Close()
			seg := segPaths(t, dir)[0]
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Tear the tail: drop the last `cut` bytes, then add half a
			// header of garbage so the torn region is not even frame-shaped.
			torn := append(append([]byte{}, data[:len(data)-cut]...), 0xFF, 0xFF, 0xFF)
			if err := os.WriteFile(seg, torn, 0o644); err != nil {
				t.Fatal(err)
			}

			j2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := j2.Replay()
			if len(got) != 2 || got[0].ID != "j1" || got[1].ID != "j2" {
				t.Fatalf("after torn tail, replay %+v", got)
			}
			if st := j2.Stats(); st.Truncated == 0 {
				t.Fatalf("truncation not counted: %+v", st)
			}
			// The repaired journal appends and replays cleanly.
			if err := j2.Append(rec(9)); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			j3, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer j3.Close()
			if got := j3.Replay(); len(got) != 3 || got[2].ID != "j9" {
				t.Fatalf("after repair+append, replay %+v", got)
			}
		})
	}
}

// TestCorruptionDropsLaterSegments: a corrupt record in a middle
// segment ends replay there — the log is a clean prefix of history, so
// segments past the corruption horizon are removed.
func TestCorruptionDropsLaterSegments(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 64}) // force rotation quickly
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs := segPaths(t, dir)
	if len(segs) < 3 {
		t.Fatalf("rotation produced only %d segments", len(segs))
	}
	// Flip a payload bit in the second segment.
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0x40
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Replay()
	// Everything from segment 1 survives; the corrupt record and all
	// later history is gone.
	if len(got) == 0 || len(got) >= 8 {
		t.Fatalf("replay recovered %d of 8 records", len(got))
	}
	for i, r := range got {
		if r.ID != fmt.Sprintf("j%d", i+1) {
			t.Fatalf("record %d is %+v", i, r)
		}
	}
	if remaining := segPaths(t, dir); len(remaining) >= len(segs) {
		t.Fatalf("later segments survived corruption: %v", remaining)
	}
}

// TestPrefixRecoveryAtEveryCut corrupts a clean multi-record segment at
// every byte offset and asserts DecodeAll recovers exactly the records
// whose frames end before the corrupted byte.
func TestPrefixRecoveryAtEveryCut(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	var ends []int
	for i := 1; i <= 4; i++ {
		frame, err := encodeRecord(rec(i))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
		ends = append(ends, buf.Len())
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		mut := append([]byte{}, data...)
		mut[cut] ^= 0x01
		wantRecs := 0
		for _, end := range ends {
			if end <= cut {
				wantRecs++
			}
		}
		recs, _, clean := DecodeAll(mut)
		if len(recs) != wantRecs {
			t.Fatalf("flip at %d: recovered %d records, want %d", cut, len(recs), wantRecs)
		}
		wantClean := 0
		if wantRecs > 0 {
			wantClean = ends[wantRecs-1]
		}
		if clean != wantClean {
			t.Fatalf("flip at %d: clean offset %d, want %d", cut, clean, wantClean)
		}
	}
}

func TestRotation(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Segments < 2 {
		t.Fatalf("no rotation after 10 appends over a 100-byte bound: %+v", st)
	}
	if got := len(segPaths(t, dir)); got != st.Segments {
		t.Fatalf("stats say %d segments, disk has %d", st.Segments, got)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replay(); len(got) != 10 {
		t.Fatalf("replay across segments: %d records", len(got))
	}
}

// TestRetireAndCompact: retiring jobs accumulates dead bytes, compaction
// rewrites the live set into one segment, and replay afterwards yields
// exactly the live records.
func TestRetireAndCompact(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 128, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := dirBytes(t, dir)
	for i := 1; i <= 19; i++ {
		j.Retire(fmt.Sprintf("j%d", i))
	}
	if !j.ShouldCompact() {
		t.Fatalf("dead bytes below threshold after 19 retires: %+v", j.Stats())
	}
	live := []Record{rec(20)}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Segments != 1 || st.DeadBytes != 0 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats %+v", st)
	}
	if after := dirBytes(t, dir); after >= before {
		t.Fatalf("compaction did not shrink the journal: %d -> %d bytes", before, after)
	}
	// The compacted journal still appends and replays.
	if err := j.Append(Record{Type: TypeStart, ID: "j20", Time: 2000}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Replay()
	if len(got) != 2 || got[0].ID != "j20" || got[1].Type != TypeStart {
		t.Fatalf("replay after compaction: %+v", got)
	}
}

// TestCheckpointDiscardsOrphanSegments: a checkpoint record is the
// compaction barrier — records before it, including a whole stale
// segment that a failed cleanup left behind, are discarded at Open.
func TestCheckpointDiscardsOrphanSegments(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Stash the pre-compaction segment, compact, then "fail" the
	// cleanup by restoring the stale file.
	seg1 := segPaths(t, dir)[0]
	stale, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	live := []Record{
		{Type: TypeCheckpoint, Seq: 9, Time: 5000},
		rec(9),
	}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.WriteFile(seg1, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := j2.Replay()
	if len(got) != 2 || got[0].Type != TypeCheckpoint || got[0].Seq != 9 || got[1].ID != "j9" {
		t.Fatalf("orphan segment leaked past the checkpoint: %+v", got)
	}
	// The next compaction's directory sweep clears the orphan.
	if err := j2.Compact(live); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(seg1); !os.IsNotExist(err) {
		t.Fatalf("orphan segment survived the compaction sweep: %v", err)
	}
	j2.Close()
}

// TestRotationFailureDoesNotFailAppend: once a record is fsynced it
// WILL replay, so a failed rotation (here: the next segment name is
// blocked by a directory) must not make Append report failure.
func TestRotationFailureDoesNotFailAppend(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 1}) // rotate after every record
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, segName(2)), 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Append(rec(i)); err != nil {
			t.Fatalf("append %d failed on a durable record: %v", i, err)
		}
	}
	// Unblock: the next append rotates after all.
	if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(4)); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Segments < 2 {
		t.Fatalf("rotation never recovered: %+v", st)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replay(); len(got) != 4 {
		t.Fatalf("replay after blocked rotation: %d records", len(got))
	}
}

// TestForeignFilesIgnored: non-segment files in the directory are left
// alone and do not confuse replay.
func TestForeignFilesIgnored(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replay(); len(got) != 1 {
		t.Fatalf("replay %+v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file disturbed: %v", err)
	}
}

// TestAppendFailureBreaksNotTears: when an append fails and the tail
// cannot be repaired, the journal must refuse all further appends —
// acknowledged records written after a torn frame would be silently
// discarded by the next Open, which is strictly worse than failing.
func TestAppendFailureBreaksNotTears(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the active segment's descriptor behind the journal's
	// back: the next write fails, and so does the truncate repair.
	j.active.Close()
	if err := j.Append(rec(2)); err == nil {
		t.Fatal("append on a dead descriptor succeeded")
	}
	if err := j.Append(rec(3)); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("broken journal kept accepting appends: %v", err)
	}
	// Everything acknowledged before the failure is still recoverable.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Replay(); len(got) != 1 || got[0].ID != "j1" {
		t.Fatalf("replay after breakage: %+v", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	t.Parallel()
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(rec(1)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}
