package journal

import (
	"os"
	"testing"

	"repro/internal/journaltest"
)

// TestMain wraps the package in the tmpdir-hygiene guard: a journal
// test that writes outside t.TempDir() fails the run.
func TestMain(m *testing.M) {
	os.Exit(journaltest.GuardTempDirs(m))
}
