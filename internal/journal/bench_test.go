package journal

import (
	"encoding/json"
	"fmt"
	"testing"
)

// benchRecord is a realistic submit record: the spec is a service
// request body, the dominant payload shape in production.
func benchRecord(i int) Record {
	return Record{
		Type: TypeSubmit,
		ID:   fmt.Sprintf("j%d", i),
		Seq:  int64(i),
		Kind: "experiment",
		Spec: json.RawMessage(`{"job":"experiment","name":"figure5","workers":4}`),
		Time: int64(i),
	}
}

// BenchmarkJournalAppend measures the durable-append hot path: frame,
// write, fsync. The fsync dominates — this is the price of "once
// Append returns, the record survives a crash".
func BenchmarkJournalAppend(b *testing.B) {
	j, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures Open over a journal of 1000 lifecycle
// records — the restart cost a crashed lphd pays before serving.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := j.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	j.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if got := j.Replay(); len(got) != 1000 {
			b.Fatalf("replayed %d records", len(got))
		}
		j.Close()
	}
}
