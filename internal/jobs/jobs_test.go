package jobs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, e *Engine, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// fakeClock is an injectable clock for the TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestJobRunsToDone(t *testing.T) {
	t.Parallel()
	e := New(Config{})
	defer e.Close()
	st, err := e.Submit("demo", func(ctx context.Context, p *Progress) (any, error) {
		p.SetTotal(3)
		for i := 0; i < 3; i++ {
			p.Add(1)
		}
		return "payload", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j1" || st.State != StateQueued {
		t.Fatalf("submit status %+v", st)
	}
	done := waitState(t, e, "j1", StateDone)
	if done.Result != "payload" || done.Done != 3 || done.Total != 3 || done.Error != "" {
		t.Fatalf("done status %+v", done)
	}
	s := e.Stats()
	if s.Totals.Submitted != 1 || s.Totals.Done != 1 || s.States[StateDone] != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestJobFailure(t *testing.T) {
	t.Parallel()
	e := New(Config{})
	defer e.Close()
	boom := errors.New("boom")
	if _, err := e.Submit("demo", func(context.Context, *Progress) (any, error) {
		return nil, boom
	}); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, e, "j1", StateFailed)
	if st.Error != "boom" || st.Result != nil {
		t.Fatalf("failed status %+v", st)
	}
	if s := e.Stats(); s.Totals.Failed != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestJobPanicBecomesFailure(t *testing.T) {
	t.Parallel()
	e := New(Config{})
	defer e.Close()
	if _, err := e.Submit("demo", func(context.Context, *Progress) (any, error) {
		panic("kaboom")
	}); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, e, "j1", StateFailed)
	if st.Error == "" {
		t.Fatalf("panic left no error: %+v", st)
	}
	// The worker survived the panic and still serves jobs.
	if _, err := e.Submit("demo", func(context.Context, *Progress) (any, error) {
		return 42, nil
	}); err != nil {
		t.Fatal(err)
	}
	waitState(t, e, "j2", StateDone)
}

// block returns a Func that signals started (if non-nil) and then waits
// for release or context cancellation.
func block(started chan<- struct{}, release <-chan struct{}) Func {
	return func(ctx context.Context, _ *Progress) (any, error) {
		if started != nil {
			close(started)
		}
		select {
		case <-release:
			return "released", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestQueueFullRejects(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 1, Queue: 1})
	defer e.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := e.Submit("blocker", block(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now occupied
	if _, err := e.Submit("waiter", block(nil, release)); err != nil {
		t.Fatal(err) // fills the queue slot
	}
	if _, err := e.Submit("overflow", block(nil, release)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	s := e.Stats()
	if s.Totals.Rejected != 1 || s.QueueDepth != 1 || s.QueueCapacity != 1 {
		t.Fatalf("stats %+v", s)
	}
	close(release)
	waitState(t, e, "j1", StateDone)
	waitState(t, e, "j2", StateDone)
	// The rejected submission consumed no id.
	if _, err := e.Submit("next", block(nil, release)); err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, e, "j3", StateDone); st.Kind != "next" {
		t.Fatalf("id reuse broken: %+v", st)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 1, Queue: 2})
	defer e.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := e.Submit("blocker", block(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	var ran atomic.Bool
	if _, err := e.Submit("victim", func(context.Context, *Progress) (any, error) {
		ran.Store(true)
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	st, err := e.Cancel("j2")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued cancel left state %s", st.State)
	}
	close(release)
	waitState(t, e, "j1", StateDone)
	// Push one more job through the worker: by the time it finishes, the
	// cancelled one would have run if the worker were going to run it.
	if _, err := e.Submit("after", func(context.Context, *Progress) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	waitState(t, e, "j3", StateDone)
	if ran.Load() {
		t.Fatal("cancelled-in-queue job body ran")
	}
	if s := e.Stats(); s.Totals.Cancelled != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// TestCancelWhileQueuedFreesAdmissionSlot: cancelling a queued job must
// free its queue slot immediately — a tombstone left in the queue would
// keep rejecting new work (429) while the stats report the queue empty.
func TestCancelWhileQueuedFreesAdmissionSlot(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 1, Queue: 1})
	defer e.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := e.Submit("blocker", block(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := e.Submit("filler", block(nil, release)); err != nil {
		t.Fatal(err) // occupies the single queue slot
	}
	if _, err := e.Submit("overflow", block(nil, release)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	if _, err := e.Cancel("j2"); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.QueueDepth != 0 {
		t.Fatalf("cancelled job still occupies the queue: %+v", s)
	}
	// The slot is free again: the next submission is admitted at once.
	if _, err := e.Submit("retry", block(nil, release)); err != nil {
		t.Fatalf("submit after queued-cancel: %v", err)
	}
	close(release)
	waitState(t, e, "j1", StateDone)
	waitState(t, e, "j3", StateDone)
}

func TestCancelWhileRunning(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 1})
	defer e.Close()
	started := make(chan struct{})
	if _, err := e.Submit("runner", block(started, nil)); err != nil {
		t.Fatal(err)
	}
	<-started
	st, err := e.Cancel("j1")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateRunning || !st.CancelRequested {
		t.Fatalf("running cancel status %+v", st)
	}
	final := waitState(t, e, "j1", StateCancelled)
	if final.Error != context.Canceled.Error() {
		t.Fatalf("cancelled status %+v", final)
	}
	if _, err := e.Cancel("j1"); !errors.Is(err, ErrFinished) {
		t.Fatalf("second cancel: %v, want ErrFinished", err)
	}
	if s := e.Stats(); s.Totals.Cancelled != 1 || s.States[StateCancelled] != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestResultTTLExpiry(t *testing.T) {
	t.Parallel()
	clock := &fakeClock{t: time.Unix(1000, 0)}
	e := New(Config{TTL: time.Minute, Now: clock.Now})
	defer e.Close()
	if _, err := e.Submit("quick", func(context.Context, *Progress) (any, error) {
		return "r", nil
	}); err != nil {
		t.Fatal(err)
	}
	waitState(t, e, "j1", StateDone)
	clock.Advance(59 * time.Second)
	if _, err := e.Get("j1"); err != nil {
		t.Fatalf("result expired before the TTL: %v", err)
	}
	clock.Advance(2 * time.Second)
	if _, err := e.Get("j1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after TTL: %v, want ErrNotFound", err)
	}
	s := e.Stats()
	if s.Totals.Expired != 1 || s.States[StateDone] != 0 {
		t.Fatalf("stats %+v", s)
	}
	// Lifetime counters survive expiry.
	if s.Totals.Submitted != 1 || s.Totals.Done != 1 {
		t.Fatalf("totals lost on expiry: %+v", s.Totals)
	}
}

func TestUnknownJob(t *testing.T) {
	t.Parallel()
	e := New(Config{})
	defer e.Close()
	if _, err := e.Get("j99"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get: %v", err)
	}
	if _, err := e.Cancel("j99"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel: %v", err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	t.Parallel()
	e := New(Config{})
	e.Close()
	if _, err := e.Submit("late", func(context.Context, *Progress) (any, error) {
		return nil, nil
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
}

// TestCloseCancelsRunning: Close must cancel in-flight jobs (they hang
// on their context) and return once the workers drained.
func TestCloseCancelsRunning(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 2})
	started := make(chan struct{})
	if _, err := e.Submit("hang", block(started, nil)); err != nil {
		t.Fatal(err)
	}
	<-started
	doneCh := make(chan struct{})
	go func() { e.Close(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a running job")
	}
}

// TestConcurrentSubmitters hammers Submit/Get/Stats from many
// goroutines (run under -race by make check).
func TestConcurrentSubmitters(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 4, Queue: 256})
	defer e.Close()
	const n = 64
	var wg sync.WaitGroup
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := e.Submit("c", func(_ context.Context, p *Progress) (any, error) {
				p.SetTotal(1)
				p.Add(1)
				return nil, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			ids <- st.ID
			e.Stats()
		}()
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		waitState(t, e, id, StateDone)
	}
	if s := e.Stats(); s.Totals.Done != n {
		t.Fatalf("stats %+v", s)
	}
}
