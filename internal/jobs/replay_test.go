package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/journal"
)

// openJournal opens a journal over dir and registers cleanup.
func openJournal(t *testing.T, dir string, opts journal.Options) *journal.Journal {
	t.Helper()
	j, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// quickJob returns a canned result immediately.
func quickJob(result any) Func {
	return func(_ context.Context, p *Progress) (any, error) {
		p.SetTotal(1)
		p.Add(1)
		return result, nil
	}
}

// rehydrateQuick is a Rehydrate hook mapping any spec to a quick job
// whose result is the spec's "result" field.
func rehydrateQuick(kind string, spec json.RawMessage) (Func, error) {
	var body struct {
		Result any `json:"result"`
	}
	if err := json.Unmarshal(spec, &body); err != nil {
		return nil, err
	}
	return quickJob(body.Result), nil
}

// journalDirBytes sums the size of every file under dir.
func journalDirBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestReplayRestoresDoneResults: a finished job's status — result
// bytes, progress, id, seq — survives an engine restart on the same
// journal byte-for-byte, with its original timestamps (the result
// expires at the originally scheduled time, not TTL-after-restart).
func TestReplayRestoresDoneResults(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := &fakeClock{t: time.Unix(5000, 0)}

	j1 := openJournal(t, dir, journal.Options{})
	e1 := New(Config{Journal: j1, Now: clock.Now, TTL: time.Minute})
	spec := json.RawMessage(`{"job":"demo","result":{"rows":3,"ok":true}}`)
	if _, err := e1.SubmitSpec("demo", spec, quickJob(map[string]any{"rows": 3, "ok": true})); err != nil {
		t.Fatal(err)
	}
	before := waitState(t, e1, "j1", StateDone)
	beforeJSON, err := json.Marshal(before)
	if err != nil {
		t.Fatal(err)
	}
	e1.Close()
	j1.Close()

	// The server is down for 30s: inside the TTL, so the result must
	// come back — with the original finish time still counting.
	clock.Advance(30 * time.Second)
	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Journal: j2, Now: clock.Now, TTL: time.Minute, Rehydrate: rehydrateQuick})
	defer e2.Close()
	after, err := e2.Get("j1")
	if err != nil {
		t.Fatalf("restored job: %v", err)
	}
	afterJSON, err := json.Marshal(after)
	if err != nil {
		t.Fatal(err)
	}
	if string(beforeJSON) != string(afterJSON) {
		t.Fatalf("status not byte-identical across restart:\nbefore %s\nafter  %s", beforeJSON, afterJSON)
	}
	st := e2.Stats()
	if st.Journal == nil || st.Journal.Replay.Replayed != 1 || st.Journal.Replay.Restarted != 0 {
		t.Fatalf("replay stats %+v", st.Journal)
	}
	// New submissions continue the sequence after the replayed job.
	sub, err := e2.SubmitSpec("demo", spec, quickJob("x"))
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != "j2" || sub.Seq != 2 {
		t.Fatalf("sequence not restored: %+v", sub)
	}
	// The original TTL schedule still applies: 40 more seconds puts the
	// restored result past its minute.
	clock.Advance(40 * time.Second)
	if _, err := e2.Get("j1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restored result outlived its original TTL: %v", err)
	}
}

// TestReplayTTLExpiredNotResurrected pins the TTL/replay interaction
// with the injectable clock: a result whose TTL elapsed while the
// server was down must not come back, even though replay happens a
// wall-clock instant after the write.
func TestReplayTTLExpiredNotResurrected(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := &fakeClock{t: time.Unix(5000, 0)}

	j1 := openJournal(t, dir, journal.Options{})
	e1 := New(Config{Journal: j1, Now: clock.Now, TTL: time.Minute})
	if _, err := e1.Submit("old", quickJob("stale")); err != nil {
		t.Fatal(err)
	}
	waitState(t, e1, "j1", StateDone)
	clock.Advance(30 * time.Second)
	if _, err := e1.Submit("young", quickJob("fresh")); err != nil {
		t.Fatal(err)
	}
	waitState(t, e1, "j2", StateDone)
	e1.Close()
	j1.Close()

	// Down for 45s: j1 finished 75s ago (past the minute), j2 only 45s
	// ago (alive for 15 more).
	clock.Advance(45 * time.Second)
	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Journal: j2, Now: clock.Now, TTL: time.Minute, Rehydrate: rehydrateQuick})
	defer e2.Close()
	if _, err := e2.Get("j1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("TTL-expired result resurrected: %v", err)
	}
	if st, err := e2.Get("j2"); err != nil || st.State != StateDone || st.Result == nil {
		t.Fatalf("in-TTL result lost: %+v, %v", st, err)
	}
	stats := e2.Stats()
	if stats.Journal.Replay.Expired != 1 || stats.Journal.Replay.Replayed != 1 {
		t.Fatalf("replay stats %+v", stats.Journal.Replay)
	}
	// The survivor still dies on its original schedule.
	clock.Advance(16 * time.Second)
	if _, err := e2.Get("j2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restored result ignored its original finish time: %v", err)
	}
}

// TestReplayRestartsInterrupted simulates a crash — the first engine is
// abandoned without Close, so no cancellation records are written —
// and asserts the queued and the running job both re-run from scratch
// after replay, keeping their original ids.
func TestReplayRestartsInterrupted(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j1 := openJournal(t, dir, journal.Options{})
	e1 := New(Config{Workers: 1, Journal: j1})
	started := make(chan struct{})
	spec := json.RawMessage(`{"job":"demo","result":"recovered"}`)
	// j1 runs (and blocks forever: its release channel never closes),
	// j2 waits behind it in the queue.
	if _, err := e1.SubmitSpec("demo", spec, block(started, nil)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := e1.SubmitSpec("demo", spec, block(nil, nil)); err != nil {
		t.Fatal(err)
	}
	// Crash: e1 is abandoned mid-flight. Nothing ran a shutdown path,
	// so the journal's last words are j1=start, j2=submit.

	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Workers: 1, Journal: j2, Rehydrate: rehydrateQuick})
	defer e2.Close()
	for _, id := range []string{"j1", "j2"} {
		st := waitState(t, e2, id, StateDone)
		if st.Result != "recovered" {
			t.Fatalf("job %s re-ran to %+v", id, st)
		}
	}
	st := e2.Stats()
	if st.Journal.Replay.Restarted != 2 || st.Journal.Replay.Replayed != 0 {
		t.Fatalf("replay stats %+v", st.Journal.Replay)
	}
	if st.Totals.Done != 2 {
		t.Fatalf("totals %+v", st.Totals)
	}
}

// TestReplayCancelledStaysDead: a job cancelled before the crash is
// neither restored nor re-run — cancellation is durable.
func TestReplayCancelledStaysDead(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j1 := openJournal(t, dir, journal.Options{})
	e1 := New(Config{Workers: 1, Journal: j1})
	started := make(chan struct{})
	spec := json.RawMessage(`{"job":"demo","result":"zombie"}`)
	if _, err := e1.SubmitSpec("demo", spec, block(started, nil)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := e1.SubmitSpec("demo", spec, block(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Cancel("j2"); err != nil { // cancelled while queued
		t.Fatal(err)
	}
	if _, err := e1.Cancel("j1"); err != nil { // cancel requested while running
		t.Fatal(err)
	}
	// Crash before j1's body ever returns.

	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Workers: 1, Journal: j2, Rehydrate: rehydrateQuick})
	defer e2.Close()
	for _, id := range []string{"j1", "j2"} {
		if _, err := e2.Get(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("cancelled job %s resurrected: %v", id, err)
		}
	}
	if st := e2.Stats(); st.Journal.Replay.Restarted != 0 || st.Journal.Replay.Replayed != 0 {
		t.Fatalf("replay stats %+v", st.Journal.Replay)
	}
}

// TestReplayRehydrateFailureIsDurableFailure: an interrupted job whose
// body cannot be rebuilt is restored as failed (not dropped, not
// retried forever) — and the failure itself is journaled, so the next
// restart replays it as a plain failed result.
func TestReplayRehydrateFailure(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j1 := openJournal(t, dir, journal.Options{})
	e1 := New(Config{Workers: 1, Journal: j1})
	started := make(chan struct{})
	if _, err := e1.SubmitSpec("demo", json.RawMessage(`{"x":1}`), block(started, nil)); err != nil {
		t.Fatal(err)
	}
	<-started
	// Crash; restart with a rehydrate hook that refuses.
	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Journal: j2, Rehydrate: func(string, json.RawMessage) (Func, error) {
		return nil, errors.New("unknown spec")
	}})
	st, err := e2.Get("j1")
	if err != nil || st.State != StateFailed || st.Error == "" {
		t.Fatalf("rehydrate failure: %+v, %v", st, err)
	}
	e2.Close()
	j2.Close()
	// Second restart: the failed record replays as a terminal result.
	j3 := openJournal(t, dir, journal.Options{})
	e3 := New(Config{Journal: j3, Rehydrate: rehydrateQuick})
	defer e3.Close()
	st, err = e3.Get("j1")
	if err != nil || st.State != StateFailed {
		t.Fatalf("second restart: %+v, %v", st, err)
	}
	if s := e3.Stats(); s.Journal.Replay.Replayed != 1 || s.Journal.Replay.Restarted != 0 {
		t.Fatalf("second restart replay stats %+v", s.Journal.Replay)
	}
}

// TestCompactionBoundsJournal churns 1000+ jobs through a durable
// engine with an aggressive TTL and asserts compaction keeps the
// on-disk journal bounded by the (tiny) live set instead of the full
// history, while a restart on the churned journal still works.
func TestCompactionBoundsJournal(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := &fakeClock{t: time.Unix(9000, 0)}
	jnl := openJournal(t, dir, journal.Options{SegmentBytes: 16 << 10, CompactBytes: 32 << 10})
	e := New(Config{Workers: 4, Queue: 64, Journal: jnl, Now: clock.Now, TTL: time.Second})
	const churn = 1200
	for batch := 0; batch < churn/40; batch++ {
		var ids []string
		for i := 0; i < 40; i++ {
			st, err := e.SubmitSpec("churn", json.RawMessage(`{"job":"churn"}`), quickJob(batch*40+i))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
		for _, id := range ids {
			waitState(t, e, id, StateDone)
		}
		// Let the batch expire; the sweep on the next entry retires its
		// journal bytes and compacts once enough are dead.
		clock.Advance(2 * time.Second)
	}
	st := e.Stats()
	if st.Totals.Done != churn || st.Totals.Expired < churn-64 {
		t.Fatalf("churn bookkeeping %+v", st.Totals)
	}
	if st.Journal.Compactions == 0 {
		t.Fatalf("no compaction after %d-job churn: %+v", churn, st.Journal)
	}
	if st.Journal.Segments > 6 {
		t.Fatalf("journal not bounded: %d segments (%+v)", st.Journal.Segments, st.Journal)
	}
	e.Close()
	if size := journalDirBytes(t, dir); size > 128<<10 {
		t.Fatalf("journal dir grew to %d bytes after churn (history is ~%d records)", size, 3*churn)
	}
	// The compacted journal replays cleanly.
	jnl.Close()
	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Journal: j2, Now: clock.Now, TTL: time.Second, Rehydrate: rehydrateQuick})
	defer e2.Close()
	if s := e2.Stats(); s.Journal == nil {
		t.Fatal("restart on compacted journal lost the journal")
	}
}

// TestCloseDrainRestartsOnReplay: a graceful Close drains interrupted
// jobs as cancelled in memory, but shutdown is not user cancellation —
// after a restart on the same journal, the drained jobs re-run exactly
// like crash-interrupted ones.
func TestCloseDrainRestartsOnReplay(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j1 := openJournal(t, dir, journal.Options{})
	e1 := New(Config{Workers: 1, Journal: j1})
	started := make(chan struct{})
	spec := json.RawMessage(`{"job":"demo","result":"after-drain"}`)
	if _, err := e1.SubmitSpec("demo", spec, block(started, nil)); err != nil { // will be running
		t.Fatal(err)
	}
	<-started
	if _, err := e1.SubmitSpec("demo", spec, block(nil, nil)); err != nil { // still queued
		t.Fatal(err)
	}
	e1.Close() // both finish as cancelled in memory, but not in the journal
	if st, err := e1.Get("j1"); err != nil || st.State != StateCancelled {
		t.Fatalf("drained job in memory: %+v, %v", st, err)
	}
	j1.Close()

	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Workers: 1, Journal: j2, Rehydrate: rehydrateQuick})
	defer e2.Close()
	for _, id := range []string{"j1", "j2"} {
		if st := waitState(t, e2, id, StateDone); st.Result != "after-drain" {
			t.Fatalf("drained job %s did not re-run: %+v", id, st)
		}
	}
	if st := e2.Stats(); st.Journal.Replay.Restarted != 2 {
		t.Fatalf("replay stats %+v", st.Journal.Replay)
	}
}

// TestCompactionKeepsUnjournalableResultFailed: a done job whose
// result could not be marshaled is journaled as failed by the worker;
// a later compaction must preserve that verdict instead of writing a
// done record with a missing payload.
func TestCompactionKeepsUnjournalableResultFailed(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j1 := openJournal(t, dir, journal.Options{})
	e1 := New(Config{Journal: j1})
	if _, err := e1.SubmitSpec("nan", json.RawMessage(`{"job":"nan"}`), quickJob(math.NaN())); err != nil {
		t.Fatal(err)
	}
	// The live store serves the real value; the journal holds a failed
	// record (NaN does not marshal).
	if st := waitState(t, e1, "j1", StateDone); st.Result == nil {
		t.Fatalf("live result lost: %+v", st)
	}
	e1.mu.Lock()
	e1.compactLocked()
	e1.mu.Unlock()
	e1.Close()
	j1.Close()

	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Journal: j2, Rehydrate: rehydrateQuick})
	defer e2.Close()
	st, err := e2.Get("j1")
	if err != nil || st.State != StateFailed || st.Result != nil {
		t.Fatalf("compacted unjournalable result replayed as %+v, %v", st, err)
	}
}

// TestCompactionPreservesCancelIntent: Cancel on a running job
// journals the cancellation immediately; a compaction while the body
// is still running must not rewrite the job as merely running, or a
// crash would re-run work the caller cancelled.
func TestCompactionPreservesCancelIntent(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	j1 := openJournal(t, dir, journal.Options{})
	e1 := New(Config{Workers: 1, Journal: j1})
	started := make(chan struct{})
	if _, err := e1.SubmitSpec("demo", json.RawMessage(`{"job":"demo","result":"zombie"}`), block(started, nil)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := e1.Cancel("j1"); err != nil {
		t.Fatal(err)
	}
	// The body has not returned; compact while the cancel is in flight.
	e1.mu.Lock()
	e1.compactLocked()
	e1.mu.Unlock()
	// Crash before the body ever returns.

	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Journal: j2, Rehydrate: rehydrateQuick})
	defer e2.Close()
	if _, err := e2.Get("j1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancelled job resurrected through compaction: %v", err)
	}
	if st := e2.Stats(); st.Journal.Replay.Restarted != 0 {
		t.Fatalf("replay stats %+v", st.Journal.Replay)
	}
}

// TestSeqWatermarkSurvivesCompaction: even when every journaled job
// has expired and compaction emptied the log, a restart must not reuse
// ids — a stale client id would silently resolve to a new job's data.
func TestSeqWatermarkSurvivesCompaction(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clock := &fakeClock{t: time.Unix(7000, 0)}
	j1 := openJournal(t, dir, journal.Options{CompactBytes: 1})
	e1 := New(Config{Workers: 2, Journal: j1, Now: clock.Now, TTL: time.Second})
	for i := 1; i <= 3; i++ {
		if _, err := e1.SubmitSpec("demo", json.RawMessage(`{"job":"demo"}`), quickJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		waitState(t, e1, "j"+string(rune('0'+i)), StateDone)
	}
	clock.Advance(2 * time.Second)
	sweepStats := e1.Stats() // sweep: expire all three, retire, compact
	if sweepStats.Totals.Expired != 3 || sweepStats.Journal.Compactions == 0 {
		t.Fatalf("churn did not compact: %+v", sweepStats)
	}
	e1.Close()
	j1.Close()

	j2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Journal: j2, Now: clock.Now, TTL: time.Second, Rehydrate: rehydrateQuick})
	defer e2.Close()
	st, err := e2.SubmitSpec("demo", json.RawMessage(`{"job":"demo"}`), quickJob("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j4" || st.Seq != 4 {
		t.Fatalf("id sequence reset after compaction: %+v", st)
	}
}

// TestSubmitSpecWithoutJournal: the spec path is inert on a
// non-durable engine.
func TestSubmitSpecWithoutJournal(t *testing.T) {
	t.Parallel()
	e := New(Config{})
	defer e.Close()
	if _, err := e.SubmitSpec("demo", json.RawMessage(`{"a":1}`), quickJob("ok")); err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, e, "j1", StateDone); st.Result != "ok" {
		t.Fatalf("status %+v", st)
	}
	if st := e.Stats(); st.Journal != nil {
		t.Fatalf("journal stats on a non-durable engine: %+v", st.Journal)
	}
}
