package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
)

// waitDraining polls until BeginDrain's flag is visible in Stats —
// the drain tests race a Drain goroutine against submissions and need
// the flag up before asserting rejection.
func waitDraining(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !e.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("engine never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainWaitsForRunningKeepsQueued is the drain state machine in
// one scene: the running job gets to finish (its result is a real
// verdict, not a cancellation), the queued job is never started, and
// submissions during the drain bounce with ErrDraining.
func TestDrainWaitsForRunningKeepsQueued(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := e.Submit("running", block(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := e.Submit("queued", quickJob("never-ran")); err != nil {
		t.Fatal(err)
	}

	resCh := make(chan DrainResult, 1)
	go func() { resCh <- e.Drain(context.Background()) }()
	waitDraining(t, e)

	if _, err := e.Submit("late", quickJob("x")); err != ErrDraining {
		t.Fatalf("submit while draining: err=%v, want ErrDraining", err)
	}
	// The drain must be blocked on the running job, not completed.
	select {
	case res := <-resCh:
		t.Fatalf("drain finished while a job was still running: %+v", res)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	res := <-resCh
	if res.Finished != 1 || res.Interrupted != 0 || res.Queued != 1 {
		t.Fatalf("drain result %+v, want finished=1 interrupted=0 queued=1", res)
	}
	// The finished job carries its real verdict; the queued one is still
	// exactly queued — not cancelled, not run.
	if st, err := e.Get("j1"); err != nil || st.State != StateDone || st.Result != "released" {
		t.Fatalf("j1 after drain: %+v, %v", st, err)
	}
	if st, err := e.Get("j2"); err != nil || st.State != StateQueued {
		t.Fatalf("j2 after drain: %+v, %v (want queued)", st, err)
	}
	if _, err := e.Submit("after-close", quickJob("x")); err != ErrClosed {
		t.Fatalf("submit after drain completed: err=%v, want ErrClosed", err)
	}
}

// TestDrainDeadlineInterrupts pins the timeout half on a durable
// engine: a job that cannot finish in time is cancelled without a
// journaled verdict, so the next incarnation re-runs it — drain
// degrades into exactly the crash contract, never worse.
func TestDrainDeadlineInterrupts(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "jrnl")
	jnl := openJournal(t, dir, journal.Options{})
	e := New(Config{Workers: 1, Journal: jnl})
	started := make(chan struct{})
	if _, err := e.SubmitSpec("stuck", json.RawMessage(`{"result":"redone"}`), block(started, nil)); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the deadline has already passed: interrupt immediately
	res := e.Drain(ctx)
	if res.Finished != 0 || res.Interrupted != 1 || res.Queued != 0 {
		t.Fatalf("drain result %+v, want finished=0 interrupted=1 queued=0", res)
	}
	if st, err := e.Get("j1"); err != nil || st.State != StateCancelled {
		t.Fatalf("interrupted job after drain: %+v, %v (want cancelled in memory)", st, err)
	}
	jnl.Close()

	jnl2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Workers: 1, Journal: jnl2, Rehydrate: rehydrateQuick})
	defer e2.Close()
	if got := e2.Stats().Journal.Replay.Restarted; got != 1 {
		t.Fatalf("restarted=%d, want 1 (interruption must replay like a crash)", got)
	}
	if st := waitState(t, e2, "j1", StateDone); st.Result != "redone" {
		t.Fatalf("re-run result %v, want %q", st.Result, "redone")
	}
}

// TestIdempotentSubmitSingleFlight is the concurrency property: any
// number of simultaneous submissions sharing a key admit exactly one
// job, execute it exactly once, and all read back the same id.
func TestIdempotentSubmitSingleFlight(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 2})
	defer e.Close()
	var executed atomic.Int64
	fn := func(context.Context, *Progress) (any, error) {
		executed.Add(1)
		return "once", nil
	}

	const stormers = 32
	ids := make([]string, stormers)
	var wg sync.WaitGroup
	for i := 0; i < stormers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _, err := e.SubmitIdem(context.Background(), "demo", "storm-key", nil, fn)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id != "j1" {
			t.Fatalf("submission %d got id %q, want j1 for every stormer", i, id)
		}
	}
	waitState(t, e, "j1", StateDone)
	if n := executed.Load(); n != 1 {
		t.Fatalf("job body executed %d times, want exactly 1", n)
	}
	st := e.Stats()
	if st.Totals.Submitted != 1 || st.Totals.IdemHits != stormers-1 {
		t.Fatalf("totals %+v, want submitted=1 idempotent_hits=%d", st.Totals, stormers-1)
	}
}

// TestIdempotencyAcrossRestart pins the durable half of the property:
// a key bound to a job that never got to run (it was queued behind a
// blocked worker when the engine went down) must, after replay, still
// answer with the original id — and the work still runs exactly once,
// in the second incarnation.
func TestIdempotencyAcrossRestart(t *testing.T) {
	t.Parallel()
	dir := filepath.Join(t.TempDir(), "jrnl")
	jnl := openJournal(t, dir, journal.Options{})
	e := New(Config{Workers: 1, Journal: jnl})
	started := make(chan struct{})
	if _, err := e.SubmitSpec("blocker", json.RawMessage(`{"result":"blocker"}`), block(started, nil)); err != nil {
		t.Fatal(err)
	}
	<-started
	var firstRuns atomic.Int64
	st, dup, err := e.SubmitIdem(context.Background(), "keyed", "K", json.RawMessage(`{"result":"keyed"}`),
		func(ctx context.Context, _ *Progress) (any, error) {
			// Honor the context, per the Func contract: when Close pops this
			// job against the cancelled base context it must finish as
			// cancelled (and replay), not sneak in an execution.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			firstRuns.Add(1)
			return "keyed", nil
		})
	if err != nil || dup {
		t.Fatalf("submit keyed: dup=%v err=%v", dup, err)
	}
	keyedID := st.ID
	// A concurrent duplicate before shutdown sees the queued original.
	if st, dup, err := e.SubmitIdem(context.Background(), "keyed", "K", nil, nil); err != nil || !dup || st.ID != keyedID {
		t.Fatalf("pre-restart duplicate: %+v dup=%v err=%v", st, dup, err)
	}
	e.Close()
	jnl.Close()
	if n := firstRuns.Load(); n != 0 {
		t.Fatalf("keyed job ran %d times behind a blocked worker, want 0", n)
	}

	var secondRuns atomic.Int64
	jnl2 := openJournal(t, dir, journal.Options{})
	e2 := New(Config{Workers: 1, Journal: jnl2, Rehydrate: func(kind string, spec json.RawMessage) (Func, error) {
		fn, err := rehydrateQuick(kind, spec)
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context, p *Progress) (any, error) {
			if kind == "keyed" {
				secondRuns.Add(1)
			}
			return fn(ctx, p)
		}, nil
	}})
	defer e2.Close()
	// The duplicate after restart answers with the original id, whether
	// the replayed job has re-run yet or not.
	if st, dup, err := e2.SubmitIdem(context.Background(), "keyed", "K", nil, nil); err != nil || !dup || st.ID != keyedID {
		t.Fatalf("post-restart duplicate: %+v dup=%v err=%v", st, dup, err)
	}
	waitState(t, e2, keyedID, StateDone)
	if n := secondRuns.Load(); n != 1 {
		t.Fatalf("keyed job ran %d times after replay, want exactly 1", n)
	}
	// Still one id for the key, now bound to the finished job.
	if st, dup, err := e2.SubmitIdem(context.Background(), "keyed", "K", nil, nil); err != nil || !dup || st.ID != keyedID || st.State != StateDone {
		t.Fatalf("settled duplicate: %+v dup=%v err=%v", st, dup, err)
	}
}

// TestIdempotentDuplicateDuringDrain pins the interaction the HTTP
// retry story depends on: a draining engine refuses new work but still
// answers duplicates of keys it already admitted.
func TestIdempotentDuplicateDuringDrain(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	if _, _, err := e.SubmitIdem(context.Background(), "keyed", "K", nil, block(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	e.BeginDrain()
	if _, _, err := e.SubmitIdem(context.Background(), "fresh", "other", nil, quickJob("x")); err != ErrDraining {
		t.Fatalf("fresh key while draining: err=%v, want ErrDraining", err)
	}
	st, dup, err := e.SubmitIdem(context.Background(), "keyed", "K", nil, nil)
	if err != nil || !dup || st.ID != "j1" {
		t.Fatalf("duplicate while draining: %+v dup=%v err=%v", st, dup, err)
	}
	close(release)
	e.Drain(context.Background())
}

// TestIdemKeyFreesOnExpiry: the binding lives exactly as long as the
// job's record — once the TTL sweeps the job away, the same key admits
// fresh work instead of pointing into the void.
func TestIdemKeyFreesOnExpiry(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	e := New(Config{Workers: 1, TTL: time.Minute, Now: clk.Now})
	defer e.Close()
	st, dup, err := e.SubmitIdem(context.Background(), "demo", "K", nil, quickJob("first"))
	if err != nil || dup {
		t.Fatalf("first submit: dup=%v err=%v", dup, err)
	}
	first := st.ID
	waitState(t, e, first, StateDone)
	clk.Advance(2 * time.Minute)
	st2, dup, err := e.SubmitIdem(context.Background(), "demo", "K", nil, quickJob("second"))
	if err != nil || dup {
		t.Fatalf("post-expiry submit: dup=%v err=%v", dup, err)
	}
	if st2.ID == first {
		t.Fatalf("expired key still answered the old job %s", first)
	}
	if _, err := e.Get(first); err != ErrNotFound {
		t.Fatalf("expired job lookup: %v, want ErrNotFound", err)
	}
}

// TestDrainManyWorkersAllFinish exercises the running-count accounting
// under -race with a full pool: every running job finishes, the drain
// reports all of them, and the counters stay consistent.
func TestDrainManyWorkersAllFinish(t *testing.T) {
	t.Parallel()
	const workers = 4
	e := New(Config{Workers: workers})
	release := make(chan struct{})
	var wgStarted sync.WaitGroup
	wgStarted.Add(workers)
	for i := 0; i < workers; i++ {
		_, err := e.Submit(fmt.Sprintf("w%d", i), func(ctx context.Context, _ *Progress) (any, error) {
			wgStarted.Done()
			select {
			case <-release:
				return "ok", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wgStarted.Wait()
	resCh := make(chan DrainResult, 1)
	go func() { resCh <- e.Drain(context.Background()) }()
	waitDraining(t, e)
	close(release)
	res := <-resCh
	if res.Finished != workers || res.Interrupted != 0 || res.Queued != 0 {
		t.Fatalf("drain result %+v, want finished=%d", res, workers)
	}
	if got := e.Stats().Totals.Done; got != workers {
		t.Fatalf("done total %d, want %d", got, workers)
	}
}
