// Package jobs is the asynchronous job engine behind the service's
// /v1/jobs routes: a bounded admission queue feeding a fixed worker
// pool, a per-job lifecycle (queued → running → done / failed /
// cancelled) with progress counters and context cancellation, and an
// in-memory result store whose finished entries expire after a TTL.
//
// Admission control is the queue bound: Submit never blocks — when the
// queue is full it fails with ErrQueueFull, which the HTTP layer maps
// to 429. Cancellation covers both halves of the lifecycle: a queued
// job is cancelled in place (the worker that eventually pops it skips
// it), and a running job has its context cancelled, so any evaluation
// that polls the context — every engine in this repository does —
// aborts mid-search.
//
// The engine also owns the zero-downtime half of the lifecycle.
// BeginDrain flips it into drain mode — new submissions fail with
// ErrDraining, idle workers park, and queued jobs are deliberately not
// started, so their journaled submit records re-admit them in the next
// incarnation — and Drain waits (bounded by its context) for running
// jobs to finish before closing. Submissions may carry an idempotency
// key: a key already bound to a live job answers with that job's
// status instead of admitting a duplicate, the binding is journaled
// with the submit record, and replay rebuilds it, so client retries
// across a crash or drain/restart boundary yield exactly one execution
// and one id.
//
// Durability is opt-in: an Engine constructed with a journal appends a
// fsynced record at every lifecycle transition and replays the journal
// on startup. Replay restores finished results into the store with
// their original timestamps (unless their TTL elapsed while the
// process was down — those stay expired), re-admits jobs that were
// queued or running at crash time through the Rehydrate hook (they
// re-run from scratch), and leaves cancelled jobs dead. The journal is
// bounded: TTL expiry retires a job's records, and once enough dead
// bytes accumulate the engine compacts the journal down to the records
// reconstructing the live set.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
)

// State is one point of the job lifecycle.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// States lists every lifecycle state in order; metrics iterate it so
// gauge series exist (at zero) before the first job arrives.
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}
}

// Finished reports whether s is terminal.
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity; callers map it to HTTP 429.
	ErrQueueFull = errors.New("jobs: admission queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: engine closed")
	// ErrDraining is returned by Submit once BeginDrain has been called:
	// the engine is winding down for a restart and admits no new work.
	// Callers map it to HTTP 503 + Retry-After (the restarted instance
	// will accept the retry). Idempotent duplicates of already-admitted
	// keys are still answered — that is the point of the key.
	ErrDraining = errors.New("jobs: engine draining")
	// ErrNotFound is returned for ids that never existed or whose result
	// already expired from the TTL'd store.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished is returned by Cancel on a job already in a terminal
	// state; callers map it to HTTP 409.
	ErrFinished = errors.New("jobs: job already finished")
)

// Func is the body of a job. It must honor ctx (return promptly with
// ctx.Err() once cancelled) and may report progress through p from any
// goroutine. The returned value is the job's result, retained in the
// store for the configured TTL.
type Func func(ctx context.Context, p *Progress) (any, error)

// RehydrateFunc rebuilds a job body from its journaled kind and spec
// so a job interrupted by a crash can re-run after replay. The spec is
// whatever opaque bytes the submitter passed to SubmitSpec.
type RehydrateFunc func(kind string, spec json.RawMessage) (Func, error)

// Progress is a job's progress counter pair, written by the job body
// and read by status snapshots; both sides use atomics, so no lock is
// shared with the engine.
type Progress struct{ done, total atomic.Int64 }

// SetTotal publishes the total number of work items, once known.
func (p *Progress) SetTotal(n int64) { p.total.Store(n) }

// Add records n more items done. Safe from multiple goroutines, so a
// sharded sweep can tick from every worker.
func (p *Progress) Add(n int64) { p.done.Add(n) }

// Snapshot returns (done, total).
func (p *Progress) Snapshot() (int64, int64) { return p.done.Load(), p.total.Load() }

// Config configures an Engine. The zero value is usable: one worker, a
// 64-deep queue, 15-minute result retention, the wall clock, no
// persistence.
type Config struct {
	// Workers is the number of job workers (concurrently running jobs).
	// 0 means 1: background jobs serialize by default so they cannot
	// starve the synchronous request path sharing the process.
	Workers int
	// Queue is the admission-queue depth — how many jobs may wait beyond
	// the ones running. 0 means 64; negative is a drain mode that
	// rejects every submission.
	Queue int
	// TTL is how long a finished job's result is retained; 0 means 15
	// minutes.
	TTL time.Duration
	// Now is the clock, injectable for TTL tests; nil means time.Now.
	// Replay compares journaled finish timestamps against this clock, so
	// results whose TTL elapsed while the process was down stay dead.
	Now func() time.Time
	// Journal, when non-nil, makes the engine durable: every lifecycle
	// transition is appended (fsynced) before it is acknowledged, and
	// New replays the journal's recovered records into the store. The
	// journal's lifetime is the caller's — Close does not close it.
	Journal *journal.Journal
	// Rehydrate rebuilds job bodies from journaled (kind, spec) pairs at
	// replay. A replayed queued/running job whose rehydration fails is
	// restored as failed instead of silently dropped.
	Rehydrate RehydrateFunc
	// Observe, when non-nil, receives the engine's phase durations —
	// obs.PhaseQueueWait (submit → worker pickup) and obs.PhaseJobRun
	// (body execution) — so the service can feed them into its
	// per-phase histograms. Called outside the engine mutex is NOT
	// guaranteed; the hook must be cheap and must not call back into
	// the engine.
	Observe func(phase string, d time.Duration)
}

// Event is one entry of a job's timeline: submit → queued → running
// → journaled → done/failed/cancelled, each stamped by the engine
// clock. For durable engines the timestamps come from the same
// values the journal records, so replay reconstructs the timeline
// byte-identically (the crash-recovery contract on GET /v1/jobs/{id}
// bodies covers the events too).
type Event struct {
	T     time.Time `json:"t"`
	Phase string    `json:"phase"`
	Msg   string    `json:"msg,omitempty"`
}

// maxEvents bounds a job's timeline; the lifecycle emits at most a
// handful, the bound only guards repeated cancel requests.
const maxEvents = 16

// Job is the engine's internal record. All fields except progress are
// guarded by the engine mutex; external callers only ever see Status
// snapshots.
type job struct {
	id         string
	seq        int64
	kind       string
	spec       json.RawMessage // journaled re-submission payload
	idemKey    string          // client idempotency key, "" when none
	fn         Func
	progress   Progress
	state      State
	cancelReq  bool
	cancel     context.CancelFunc // set while running
	result     any
	resultJSON json.RawMessage // canonical result bytes, for the journal
	err        error
	created    time.Time
	started    time.Time // worker pickup; zero until running
	finished   time.Time
	events     []Event
}

// addEvent appends to the job timeline (engine mutex held), bounded.
func (j *job) addEvent(t time.Time, phase, msg string) {
	if len(j.events) < maxEvents {
		j.events = append(j.events, Event{T: t, Phase: phase, Msg: msg})
	}
}

// Status is an externally visible snapshot of one job, shaped for the
// service's JSON responses.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Done/Total are the progress counters (Total 0 until the job body
	// publishes it).
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// CancelRequested is set once Cancel reached a running job whose
	// body has not returned yet.
	CancelRequested bool   `json:"cancel_requested,omitempty"`
	Error           string `json:"error,omitempty"`
	Result          any    `json:"result,omitempty"`
	// Seq is the admission sequence number — the stable sort key of the
	// paginated job listing (ids are "j<seq>").
	Seq int64 `json:"seq"`
	// Events is the job's timeline: submit → queued → running →
	// journaled → done/failed/cancelled, stamped by the engine clock.
	Events []Event `json:"events,omitempty"`
}

// Stats is the engine's aggregate bookkeeping for metrics: live jobs by
// state, queue occupancy, monotone lifetime counters, and — when the
// engine is durable — the journal's bookkeeping.
type Stats struct {
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	States        map[State]int `json:"states"`
	// Draining reports whether BeginDrain has been called: the engine
	// is refusing new work while running jobs finish.
	Draining bool           `json:"draining"`
	Totals   LifetimeTotals `json:"totals"`
	// Journal is nil when the engine runs without persistence.
	Journal *JournalStats `json:"journal,omitempty"`
}

// LifetimeTotals are monotone counters over the engine's lifetime (they
// survive TTL expiry of the underlying jobs).
type LifetimeTotals struct {
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Expired   uint64 `json:"expired"`
	// IdemHits counts submissions answered with an existing job because
	// their idempotency key was already bound — work the dedup saved.
	IdemHits uint64 `json:"idempotent_hits"`
}

// ReplayStats counts what the startup replay did.
type ReplayStats struct {
	// Replayed is the number of finished jobs restored into the store
	// with their original timestamps.
	Replayed uint64 `json:"replayed"`
	// Restarted is the number of jobs that were queued or running at
	// crash time and were re-admitted to run from scratch.
	Restarted uint64 `json:"restarted"`
	// Expired is the number of finished jobs whose TTL elapsed while the
	// process was down; they were not resurrected.
	Expired uint64 `json:"expired"`
}

// JournalStats combines the journal's on-disk bookkeeping with the
// engine's replay counters and append-error count.
type JournalStats struct {
	journal.Stats
	Replay ReplayStats `json:"replay"`
	// AppendErrors counts lifecycle records that failed to persist
	// (submission-time failures reject the submission instead).
	AppendErrors uint64 `json:"append_errors"`
}

// Engine runs jobs from a bounded queue on a fixed worker pool. The
// queue is a FIFO slice under the engine mutex (not a channel), so
// cancelling a queued job removes it in place — the slot frees for new
// admissions immediately and the reported depth is always the number
// of jobs actually waiting.
type Engine struct {
	mu     sync.Mutex
	cond   *sync.Cond // signaled when queue grows or the engine closes
	jobs   map[string]*job
	queue  []*job // FIFO of queued jobs; cancel removes in place
	depth  int    // admission bound on len(queue)
	seq    int64
	closed bool

	// draining is the graceful-shutdown latch: once set, submissions
	// fail with ErrDraining, idle workers park instead of popping, and
	// queued jobs stay queued (their journaled submit records re-admit
	// them in the next incarnation).
	draining bool
	// running counts jobs currently executing a body; Drain waits for it
	// to reach zero. The cond is broadcast on every decrement while
	// draining.
	running int
	// idem maps a live idempotency key to the job id it admitted; the
	// binding is journaled with the submit record and dies with the job.
	idem map[string]string

	workers int
	ttl     time.Duration
	now     func() time.Time
	observe func(phase string, d time.Duration) // nil-safe via observePhase
	totals  LifetimeTotals

	jnl        *journal.Journal
	rehydrate  RehydrateFunc
	replay     ReplayStats
	appendErrs uint64

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New builds an Engine, replays its journal (when configured), and
// starts its workers.
func New(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	depth := cfg.Queue
	switch {
	case depth == 0:
		depth = 64
	case depth < 0:
		depth = 0
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	now := cfg.Now
	if now == nil {
		now = time.Now //lint:wallclock production default; tests inject Config.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		jobs:       make(map[string]*job),
		idem:       make(map[string]string),
		depth:      depth,
		workers:    workers,
		ttl:        ttl,
		now:        now,
		observe:    cfg.Observe,
		jnl:        cfg.Journal,
		rehydrate:  cfg.Rehydrate,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	e.cond = sync.NewCond(&e.mu)
	if e.jnl != nil {
		e.replayJournal() // before the workers: replay owns the state
	}
	for w := 0; w < workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// replayJournal reconstructs the store from the journal's recovered
// records. Runs before the workers start, so no locking is needed.
//
// The per-job state machine is last-record-wins: submit → queued,
// start → running, done/failed/cancelled → terminal. Then, in
// admission order: finished jobs whose TTL has not yet elapsed
// (measured against the injectable clock, not wall time at replay) are
// restored with their original timestamps; finished jobs past their
// TTL stay expired; cancelled jobs stay dead; queued and running jobs
// are re-admitted through Rehydrate and re-run from scratch.
func (e *Engine) replayJournal() {
	byID := make(map[string]*job)
	var order []string
	for _, rec := range e.jnl.Replay() {
		switch rec.Type {
		case journal.TypeCheckpoint:
			// Compaction barrier: carries the admission-sequence watermark,
			// so ids are never reused even after every journaled job has
			// been compacted away.
			if rec.Seq > e.seq {
				e.seq = rec.Seq
			}
		case journal.TypeSubmit:
			if _, dup := byID[rec.ID]; !dup {
				order = append(order, rec.ID)
			}
			byID[rec.ID] = &job{
				id:      rec.ID,
				seq:     rec.Seq,
				kind:    rec.Kind,
				spec:    rec.Spec,
				idemKey: rec.Idem,
				state:   StateQueued,
				created: rec.When(),
			}
			if rec.Seq > e.seq {
				e.seq = rec.Seq
			}
		case journal.TypeStart:
			if j, ok := byID[rec.ID]; ok {
				j.state = StateRunning
				j.started = rec.When()
			}
		case journal.TypeDone:
			if j, ok := byID[rec.ID]; ok {
				j.state = StateDone
				j.resultJSON = rec.Result
				if len(rec.Result) > 0 && string(rec.Result) != "null" {
					j.result = rec.Result
				}
				j.progress.SetTotal(rec.Total)
				j.progress.Add(rec.Done)
				j.finished = rec.When()
			}
		case journal.TypeFailed:
			if j, ok := byID[rec.ID]; ok {
				j.state = StateFailed
				j.err = errors.New(rec.Error)
				j.finished = rec.When()
			}
		case journal.TypeCancelled:
			if j, ok := byID[rec.ID]; ok {
				j.state = StateCancelled
				j.err = context.Canceled
				j.finished = rec.When()
			}
		}
	}
	sort.Slice(order, func(a, b int) bool { return byID[order[a]].seq < byID[order[b]].seq })
	cutoff := e.now().Add(-e.ttl)
	for _, id := range order {
		j := byID[id]
		switch j.state {
		case StateDone, StateFailed:
			if j.finished.Before(cutoff) {
				// The TTL elapsed while the server was down: the result
				// must not resurrect.
				e.replay.Expired++
				e.jnl.Retire(j.id)
				continue
			}
			// Rebuild the timeline the live job carried: every event is
			// stamped from a journaled record time, so the GET body is
			// byte-identical to the pre-crash one.
			j.events = replayEvents(j)
			e.jobs[j.id] = j
			e.replay.Replayed++
		case StateCancelled:
			// Cancelled jobs stay dead across restarts.
			e.jnl.Retire(j.id)
		default: // queued or running at crash time: re-run from scratch
			fn, err := e.rehydrateJob(j)
			if err != nil {
				// Don't drop the job silently — and don't retry it forever
				// on every restart: record the failure durably.
				j.state = StateFailed
				j.err = fmt.Errorf("jobs: rehydrate after crash: %w", err)
				j.finished = e.now()
				j.events = replayEvents(j)
				e.jobs[j.id] = j
				e.appendJournal(journal.Record{
					Type: journal.TypeFailed, ID: j.id,
					Error: j.err.Error(), Time: j.finished.UnixNano(),
				})
				continue
			}
			// Re-admission keeps the original id, seq, and creation time,
			// resets progress, and bypasses the queue bound: recovered work
			// is never dropped for depth. The timeline restarts with it:
			// the job is genuinely queued again.
			j.fn = fn
			j.state = StateQueued
			j.started = time.Time{}
			j.addEvent(j.created, "submit", "")
			j.addEvent(j.created, "queued", "")
			e.jobs[j.id] = j
			e.queue = append(e.queue, j)
			e.replay.Restarted++
		}
	}
	// Rebind idempotency keys for every job that survived replay — a
	// duplicate submission after the restart answers with the original
	// job, whatever state it is in. Expired and cancelled jobs free
	// their keys instead: their outcome is gone, so a retry legitimately
	// runs fresh work.
	for id, j := range e.jobs {
		if j.idemKey != "" {
			e.idem[j.idemKey] = id
		}
	}
}

// replayEvents reconstructs the timeline a terminal job accumulated
// while it was live, purely from journaled record timestamps
// (created, started, finished), so a replayed job's status — events
// included — is byte-identical to its pre-crash one.
func replayEvents(j *job) []Event {
	evs := make([]Event, 0, 5)
	evs = append(evs,
		Event{T: j.created, Phase: "submit"},
		Event{T: j.created, Phase: "queued"})
	if !j.started.IsZero() {
		evs = append(evs, Event{T: j.started, Phase: "running"})
	}
	evs = append(evs, Event{T: j.finished, Phase: "journaled"})
	terminal := Event{T: j.finished, Phase: string(j.state)}
	if j.state == StateFailed && j.err != nil {
		terminal.Msg = j.err.Error()
	}
	return append(evs, terminal)
}

// rehydrateJob rebuilds the body of a replayed job.
func (e *Engine) rehydrateJob(j *job) (Func, error) {
	if e.rehydrate == nil {
		return nil, errors.New("no rehydrate hook configured")
	}
	return e.rehydrate(j.kind, j.spec)
}

// observePhase feeds the Observe hook when one is configured.
func (e *Engine) observePhase(phase string, d time.Duration) {
	if e.observe != nil {
		e.observe(phase, d)
	}
}

// appendJournal persists one lifecycle record, counting (not
// propagating) failures — the in-memory state has already transitioned
// and remains authoritative for this process's lifetime. The returned
// ok reports whether the record is durable (true on a journal-less
// engine would lie, so there it is false and no "journaled" event is
// ever claimed).
func (e *Engine) appendJournal(rec journal.Record) (ok bool) {
	if e.jnl == nil {
		return false
	}
	if err := e.jnl.Append(rec); err != nil {
		e.appendErrs++
		return false
	}
	return true
}

// Close cancels every running job, stops accepting submissions, and
// waits for the workers to drain (jobs still queued run against the
// already-cancelled base context and finish as cancelled). The journal,
// if any, is left open — its lifetime belongs to the caller.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.baseCancel()
	e.wg.Wait()
}

// DrainResult reports what a graceful drain accomplished.
type DrainResult struct {
	// Finished counts jobs that were running when the drain began and
	// completed within the deadline — their verdicts are journaled and
	// survive the restart.
	Finished int `json:"finished"`
	// Interrupted counts running jobs still unfinished at the deadline;
	// they are cancelled in memory only, so — exactly like a crash —
	// replay re-runs them on the next start.
	Interrupted int `json:"interrupted"`
	// Queued counts jobs still waiting when the engine closed; their
	// journaled submit records re-admit them on the next start.
	Queued int `json:"queued"`
}

// BeginDrain flips the engine into drain mode: submissions fail with
// ErrDraining (idempotent duplicates of admitted keys still answer
// with the original job), idle workers park, and no queued job is
// started — the queue stays journaled as queued for the next
// incarnation. Running jobs keep running; Drain waits for them.
// Idempotent; there is no way back short of a restart.
func (e *Engine) BeginDrain() {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Drain gracefully winds the engine down: BeginDrain, wait for the
// running jobs to finish until ctx expires, then Close. Jobs that beat
// the deadline keep their journaled verdicts; stragglers are cancelled
// through the base context and re-run after restart, exactly as if the
// process had crashed. Queued jobs are never started — they replay as
// queued. Safe to call once; the engine is closed when it returns.
func (e *Engine) Drain(ctx context.Context) DrainResult {
	e.BeginDrain()
	// Wake the wait loop when the deadline passes. context.AfterFunc
	// (rather than a timer) keeps the bounded wait on the caller's
	// context tree.
	stop := context.AfterFunc(ctx, func() {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	})
	e.mu.Lock()
	began := e.running
	for e.running > 0 && ctx.Err() == nil {
		e.cond.Wait()
	}
	res := DrainResult{
		Finished:    began - e.running,
		Interrupted: e.running,
		Queued:      len(e.queue),
	}
	e.mu.Unlock()
	stop()
	e.Close()
	return res
}

// Submit admits a job of the given kind. It never blocks: when the
// queue is full the job is rejected with ErrQueueFull. On success the
// returned Status is the freshly queued job (ids are "j1", "j2", … in
// admission order). Jobs submitted this way carry no spec, so a
// durable engine cannot re-run them after a crash — service callers
// use SubmitSpec.
func (e *Engine) Submit(kind string, fn Func) (Status, error) {
	return e.SubmitSpec(kind, nil, fn)
}

// SubmitSpec admits a job along with its opaque re-submission spec —
// the bytes a durable engine journals and later hands to Rehydrate to
// re-run the job after a crash. On a durable engine the submit record
// is fsynced before the job is admitted: a journal write failure
// rejects the submission rather than accepting work that could not be
// made durable.
func (e *Engine) SubmitSpec(kind string, spec json.RawMessage, fn Func) (Status, error) {
	st, _, err := e.SubmitIdem(context.Background(), kind, "", spec, fn)
	return st, err
}

// SubmitIdem admits a job like SubmitSpec, deduplicated by the
// caller's idempotency key (empty means none). A key already bound to
// a live job returns that job's current status with dup=true and
// admits nothing — even while the engine drains, so a client retrying
// through a drain/restart gets the original job instead of a second
// execution. The binding is journaled inside the submit record and
// rebuilt by replay, so the dedup holds across crash and drain/restart
// boundaries; it ends when the job's record expires from the store.
//
// ctx carries request attribution only — when it holds an obs trace,
// the durable submit's journal append (and its fsync) land as spans
// on the submitting request. It does not bound or cancel the
// admission.
func (e *Engine) SubmitIdem(ctx context.Context, kind, key string, spec json.RawMessage, fn Func) (Status, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return Status{}, false, ErrClosed
	}
	e.sweepLocked()
	if key != "" {
		if id, ok := e.idem[key]; ok {
			if j, ok := e.jobs[id]; ok {
				e.totals.IdemHits++
				return e.statusLocked(j), true, nil
			}
			// The bound job expired from the store; the key is free again.
			delete(e.idem, key)
		}
	}
	if e.draining {
		return Status{}, false, ErrDraining
	}
	if len(e.queue) >= e.depth {
		e.totals.Rejected++
		return Status{}, false, ErrQueueFull
	}
	seq := e.seq + 1
	j := &job{
		id:      "j" + strconv.FormatInt(seq, 10),
		seq:     seq,
		kind:    kind,
		spec:    spec,
		idemKey: key,
		fn:      fn,
		state:   StateQueued,
		created: e.now(),
	}
	if e.jnl != nil {
		rec := journal.Record{
			Type: journal.TypeSubmit, ID: j.id, Seq: seq,
			Kind: kind, Spec: spec, Idem: key, Time: j.created.UnixNano(),
		}
		if err := e.jnl.AppendCtx(ctx, rec); err != nil {
			return Status{}, false, fmt.Errorf("jobs: journal submit: %w", err)
		}
	}
	j.addEvent(j.created, "submit", "")
	j.addEvent(j.created, "queued", "")
	e.seq = seq
	e.queue = append(e.queue, j)
	e.jobs[j.id] = j
	if key != "" {
		e.idem[key] = j.id
	}
	e.totals.Submitted++
	e.cond.Signal()
	return e.statusLocked(j), false, nil
}

// Get returns the job's status, or ErrNotFound for unknown/expired ids.
func (e *Engine) Get(id string) (Status, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked()
	j, ok := e.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return e.statusLocked(j), nil
}

// Page lists jobs in admission order (by sequence number), starting
// strictly after the given sequence, returning at most limit entries
// filtered to the given states (nil or empty means every state). The
// returned next is the sequence of the last entry (pass it back as
// after to continue) and more reports whether further entries existed
// beyond the page at snapshot time. The seq ordering is stable across
// completions and expiries between pages: a job never moves, it can
// only disappear.
func (e *Engine) Page(after int64, limit int, states map[State]bool) (items []Status, next int64, more bool) {
	if limit <= 0 {
		limit = 50
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked()
	matched := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		if j.seq > after && (len(states) == 0 || states[j.state]) {
			matched = append(matched, j)
		}
	}
	sort.Slice(matched, func(a, b int) bool { return matched[a].seq < matched[b].seq })
	if len(matched) > limit {
		matched, more = matched[:limit], true
	}
	items = make([]Status, len(matched))
	next = after
	for i, j := range matched {
		items[i] = e.statusLocked(j)
		next = j.seq
	}
	return items, next, more
}

// Cancel cancels the job: a queued job flips to cancelled in place (the
// worker that pops it will skip it), a running job has its context
// cancelled and finishes as cancelled once its body returns. Cancelling
// a finished job fails with ErrFinished; unknown ids with ErrNotFound.
func (e *Engine) Cancel(id string) (Status, error) {
	e.mu.Lock()
	e.sweepLocked()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return Status{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		// Remove the job from the waiting line so its admission slot
		// frees immediately (a tombstone left in the queue would keep
		// answering ErrQueueFull for work that no longer exists).
		for i, q := range e.queue {
			if q == j {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				break
			}
		}
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = e.now()
		e.totals.Cancelled++
		if e.appendJournal(journal.Record{
			Type: journal.TypeCancelled, ID: j.id, Time: j.finished.UnixNano(),
		}) {
			j.addEvent(j.finished, "journaled", "")
		}
		j.addEvent(j.finished, string(StateCancelled), "")
		st := e.statusLocked(j)
		e.mu.Unlock()
		return st, nil
	case StateRunning:
		j.cancelReq = true
		cancel := j.cancel
		// Journal the cancellation intent now: if the process crashes
		// before the body returns, replay must not re-run a job the
		// caller cancelled. Should the body still complete successfully,
		// the worker's later done record wins (last record per id).
		when := e.now()
		j.addEvent(when, "cancel_requested", "")
		e.appendJournal(journal.Record{
			Type: journal.TypeCancelled, ID: j.id, Time: when.UnixNano(),
		})
		st := e.statusLocked(j)
		e.mu.Unlock()
		cancel()
		return st, nil
	default:
		st := e.statusLocked(j)
		e.mu.Unlock()
		return st, ErrFinished
	}
}

// Stats returns the engine's aggregate bookkeeping.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked()
	states := make(map[State]int, 5)
	for _, s := range States() {
		states[s] = 0
	}
	for _, j := range e.jobs {
		states[j.state]++
	}
	// Queued jobs and the waiting line are the same set by construction
	// (cancel removes from both), so the depth is the state count.
	st := Stats{
		Workers:       e.workers,
		QueueDepth:    states[StateQueued],
		QueueCapacity: e.depth,
		States:        states,
		Draining:      e.draining,
		Totals:        e.totals,
	}
	if e.jnl != nil {
		st.Journal = &JournalStats{
			Stats:        e.jnl.Stats(),
			Replay:       e.replay,
			AppendErrors: e.appendErrs,
		}
	}
	return st
}

// statusLocked snapshots j under the engine mutex.
func (e *Engine) statusLocked(j *job) Status {
	done, total := j.progress.Snapshot()
	st := Status{
		ID:              j.id,
		Kind:            j.kind,
		State:           j.state,
		Done:            done,
		Total:           total,
		CancelRequested: j.cancelReq && j.state == StateRunning,
		Seq:             j.seq,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	if len(j.events) > 0 {
		// Copy: the worker appends to j.events after the snapshot is
		// handed out and marshaled outside the engine mutex.
		st.Events = append([]Event(nil), j.events...)
	}
	return st
}

// sweepLocked drops finished jobs whose TTL elapsed. Called under the
// engine mutex from every public entry point, so the store is bounded
// by traffic without a janitor goroutine. Expired jobs retire their
// journal records; once enough dead bytes accumulate the journal is
// compacted down to the live set.
func (e *Engine) sweepLocked() {
	cutoff := e.now().Add(-e.ttl)
	for id, j := range e.jobs {
		if j.state.Finished() && j.finished.Before(cutoff) {
			delete(e.jobs, id)
			if j.idemKey != "" && e.idem[j.idemKey] == id {
				// The key dies with the job: a later submission with the
				// same key legitimately runs fresh work.
				delete(e.idem, j.idemKey)
			}
			e.totals.Expired++
			if e.jnl != nil {
				e.jnl.Retire(id)
			}
		}
	}
	if e.jnl != nil && e.jnl.ShouldCompact() {
		e.compactLocked()
	}
}

// compactLocked rewrites the journal down to the records that
// reconstruct the live set: per job, its submit record plus the record
// of whatever state it is in now. Failures count as append errors —
// the journal keeps its dead bytes and the next sweep retries.
func (e *Engine) compactLocked() {
	live := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		live = append(live, j)
	}
	sort.Slice(live, func(a, b int) bool { return live[a].seq < live[b].seq })
	recs := make([]journal.Record, 0, 2*len(live)+1)
	// The checkpoint barrier leads: replay discards everything before
	// it, and its Seq keeps the id sequence monotone across restarts
	// even when the live set is empty.
	recs = append(recs, journal.Record{
		Type: journal.TypeCheckpoint, Seq: e.seq, Time: e.now().UnixNano(),
	})
	for _, j := range live {
		recs = append(recs, journal.Record{
			Type: journal.TypeSubmit, ID: j.id, Seq: j.seq,
			Kind: j.kind, Spec: j.spec, Idem: j.idemKey, Time: j.created.UnixNano(),
		})
		switch j.state {
		case StateRunning:
			if j.cancelReq {
				// Cancel already journaled its intent; compaction must not
				// rewrite the job as merely running, or a crash before the
				// body returns would re-run cancelled work.
				recs = append(recs, journal.Record{
					Type: journal.TypeCancelled, ID: j.id, Time: e.now().UnixNano(),
				})
				continue
			}
			recs = append(recs, journal.Record{
				Type: journal.TypeStart, ID: j.id, Time: j.created.UnixNano(),
			})
		case StateDone:
			if j.resultJSON == nil {
				// The result never made it into the journal (it was not
				// marshalable); preserve the worker's failed record rather
				// than inventing a done record with a missing payload.
				recs = append(recs, journal.Record{
					Type: journal.TypeFailed, ID: j.id,
					Error: "jobs: result not journalable", Time: j.finished.UnixNano(),
				})
				continue
			}
			done, total := j.progress.Snapshot()
			recs = append(recs, journal.Record{
				Type: journal.TypeDone, ID: j.id, Result: j.resultJSON,
				Done: done, Total: total, Time: j.finished.UnixNano(),
			})
		case StateFailed:
			recs = append(recs, journal.Record{
				Type: journal.TypeFailed, ID: j.id,
				Error: j.err.Error(), Time: j.finished.UnixNano(),
			})
		case StateCancelled:
			recs = append(recs, journal.Record{
				Type: journal.TypeCancelled, ID: j.id, Time: j.finished.UnixNano(),
			})
		}
	}
	if err := e.jnl.Compact(recs); err != nil {
		e.appendErrs++
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	e.mu.Lock()
	for {
		for len(e.queue) == 0 && !e.closed && !e.draining {
			e.cond.Wait()
		}
		if e.draining {
			// Graceful drain: park without popping, whatever the queue
			// holds — queued jobs must stay queued (their journaled submit
			// records re-admit them on the next start), not run against a
			// cancelled context and finish as cancelled the way a plain
			// Close's leftovers do below.
			e.mu.Unlock()
			return
		}
		if len(e.queue) == 0 { // closed and drained
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		e.running++
		// Cancelled jobs never reach here — Cancel removes them from the
		// waiting line — so j is always genuinely queued.
		ctx, cancel := context.WithCancel(e.baseCtx)
		j.state = StateRunning
		j.cancel = cancel
		// One clock read stamps the start record, the running event, and
		// the queue-wait observation, so replay (which only has the
		// record) reconstructs the exact live timeline.
		j.started = e.now()
		j.addEvent(j.started, "running", "")
		e.appendJournal(journal.Record{
			Type: journal.TypeStart, ID: j.id, Time: j.started.UnixNano(),
		})
		e.mu.Unlock()
		e.observePhase(obs.PhaseQueueWait, j.started.Sub(j.created))

		result, err := runBody(j.fn, ctx, &j.progress)
		cancel()

		e.mu.Lock()
		e.running--
		if e.draining {
			// Drain blocks on running reaching zero; every finish while
			// draining is a potential last one.
			e.cond.Broadcast()
		}
		j.finished = e.now()
		e.observePhase(obs.PhaseJobRun, j.finished.Sub(j.started))
		done, total := j.progress.Snapshot()
		switch {
		case err == nil:
			j.state = StateDone
			j.result = result
			e.totals.Done++
			resultJSON, jerr := json.Marshal(result)
			if jerr != nil {
				// The result cannot survive a restart; journal the job as
				// failed so replay reports the loss instead of inventing a
				// result (the live store still serves the real value).
				e.appendJournal(journal.Record{
					Type: journal.TypeFailed, ID: j.id,
					Error: fmt.Sprintf("jobs: result not journalable: %v", jerr),
					Time:  j.finished.UnixNano(),
				})
				j.addEvent(j.finished, string(StateDone), "")
				break
			}
			j.resultJSON = resultJSON
			if e.appendJournal(journal.Record{
				Type: journal.TypeDone, ID: j.id, Result: resultJSON,
				Done: done, Total: total, Time: j.finished.UnixNano(),
			}) {
				j.addEvent(j.finished, "journaled", "")
			}
			j.addEvent(j.finished, string(StateDone), "")
		case j.cancelReq || errors.Is(err, context.Canceled):
			j.state = StateCancelled
			j.err = context.Canceled
			e.totals.Cancelled++
			// A graceful Close drains interrupted jobs as cancelled in
			// memory, but only user cancellation is journaled: shutdown is
			// not a verdict on the work, so a restart re-runs it — the
			// same recovery a crash gets.
			if j.cancelReq || !e.closed {
				if e.appendJournal(journal.Record{
					Type: journal.TypeCancelled, ID: j.id, Time: j.finished.UnixNano(),
				}) {
					j.addEvent(j.finished, "journaled", "")
				}
			}
			j.addEvent(j.finished, string(StateCancelled), "")
		default:
			j.state = StateFailed
			j.err = err
			e.totals.Failed++
			if e.appendJournal(journal.Record{
				Type: journal.TypeFailed, ID: j.id,
				Error: err.Error(), Time: j.finished.UnixNano(),
			}) {
				j.addEvent(j.finished, "journaled", "")
			}
			j.addEvent(j.finished, string(StateFailed), err.Error())
		}
	}
}

// runBody isolates the job body: a panic becomes a failed job, not a
// dead worker.
func runBody(fn Func, ctx context.Context, p *Progress) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job panicked: %v", r)
		}
	}()
	return fn(ctx, p)
}
