// Package jobs is the asynchronous job engine behind the service's
// /v1/jobs routes: a bounded admission queue feeding a fixed worker
// pool, a per-job lifecycle (queued → running → done / failed /
// cancelled) with progress counters and context cancellation, and an
// in-memory result store whose finished entries expire after a TTL.
//
// Admission control is the queue bound: Submit never blocks — when the
// queue is full it fails with ErrQueueFull, which the HTTP layer maps
// to 429. Cancellation covers both halves of the lifecycle: a queued
// job is cancelled in place (the worker that eventually pops it skips
// it), and a running job has its context cancelled, so any evaluation
// that polls the context — every engine in this repository does —
// aborts mid-search.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// State is one point of the job lifecycle.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// States lists every lifecycle state in order; metrics iterate it so
// gauge series exist (at zero) before the first job arrives.
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}
}

// Finished reports whether s is terminal.
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity; callers map it to HTTP 429.
	ErrQueueFull = errors.New("jobs: admission queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: engine closed")
	// ErrNotFound is returned for ids that never existed or whose result
	// already expired from the TTL'd store.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished is returned by Cancel on a job already in a terminal
	// state; callers map it to HTTP 409.
	ErrFinished = errors.New("jobs: job already finished")
)

// Func is the body of a job. It must honor ctx (return promptly with
// ctx.Err() once cancelled) and may report progress through p from any
// goroutine. The returned value is the job's result, retained in the
// store for the configured TTL.
type Func func(ctx context.Context, p *Progress) (any, error)

// Progress is a job's progress counter pair, written by the job body
// and read by status snapshots; both sides use atomics, so no lock is
// shared with the engine.
type Progress struct{ done, total atomic.Int64 }

// SetTotal publishes the total number of work items, once known.
func (p *Progress) SetTotal(n int64) { p.total.Store(n) }

// Add records n more items done. Safe from multiple goroutines, so a
// sharded sweep can tick from every worker.
func (p *Progress) Add(n int64) { p.done.Add(n) }

// Snapshot returns (done, total).
func (p *Progress) Snapshot() (int64, int64) { return p.done.Load(), p.total.Load() }

// Config configures an Engine. The zero value is usable: one worker, a
// 64-deep queue, 15-minute result retention, the wall clock.
type Config struct {
	// Workers is the number of job workers (concurrently running jobs).
	// 0 means 1: background jobs serialize by default so they cannot
	// starve the synchronous request path sharing the process.
	Workers int
	// Queue is the admission-queue depth — how many jobs may wait beyond
	// the ones running. 0 means 64; negative is a drain mode that
	// rejects every submission.
	Queue int
	// TTL is how long a finished job's result is retained; 0 means 15
	// minutes.
	TTL time.Duration
	// Now is the clock, injectable for TTL tests; nil means time.Now.
	Now func() time.Time
}

// Job is the engine's internal record. All fields except progress are
// guarded by the engine mutex; external callers only ever see Status
// snapshots.
type job struct {
	id        string
	kind      string
	fn        Func
	progress  Progress
	state     State
	cancelReq bool
	cancel    context.CancelFunc // set while running
	result    any
	err       error
	created   time.Time
	finished  time.Time
}

// Status is an externally visible snapshot of one job, shaped for the
// service's JSON responses.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Done/Total are the progress counters (Total 0 until the job body
	// publishes it).
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// CancelRequested is set once Cancel reached a running job whose
	// body has not returned yet.
	CancelRequested bool   `json:"cancel_requested,omitempty"`
	Error           string `json:"error,omitempty"`
	Result          any    `json:"result,omitempty"`
}

// Stats is the engine's aggregate bookkeeping for metrics: live jobs by
// state, queue occupancy, and monotone lifetime counters.
type Stats struct {
	Workers       int            `json:"workers"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	States        map[State]int  `json:"states"`
	Totals        LifetimeTotals `json:"totals"`
}

// LifetimeTotals are monotone counters over the engine's lifetime (they
// survive TTL expiry of the underlying jobs).
type LifetimeTotals struct {
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Expired   uint64 `json:"expired"`
}

// Engine runs jobs from a bounded queue on a fixed worker pool. The
// queue is a FIFO slice under the engine mutex (not a channel), so
// cancelling a queued job removes it in place — the slot frees for new
// admissions immediately and the reported depth is always the number
// of jobs actually waiting.
type Engine struct {
	mu     sync.Mutex
	cond   *sync.Cond // signaled when queue grows or the engine closes
	jobs   map[string]*job
	queue  []*job // FIFO of queued jobs; cancel removes in place
	depth  int    // admission bound on len(queue)
	seq    int64
	closed bool

	workers int
	ttl     time.Duration
	now     func() time.Time
	totals  LifetimeTotals

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
}

// New builds an Engine and starts its workers.
func New(cfg Config) *Engine {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	depth := cfg.Queue
	switch {
	case depth == 0:
		depth = 64
	case depth < 0:
		depth = 0
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		jobs:       make(map[string]*job),
		depth:      depth,
		workers:    workers,
		ttl:        ttl,
		now:        now,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	e.cond = sync.NewCond(&e.mu)
	for w := 0; w < workers; w++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Close cancels every running job, stops accepting submissions, and
// waits for the workers to drain (jobs still queued run against the
// already-cancelled base context and finish as cancelled).
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.baseCancel()
	e.wg.Wait()
}

// Submit admits a job of the given kind. It never blocks: when the
// queue is full the job is rejected with ErrQueueFull. On success the
// returned Status is the freshly queued job (ids are "j1", "j2", … in
// admission order).
func (e *Engine) Submit(kind string, fn Func) (Status, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return Status{}, ErrClosed
	}
	e.sweepLocked()
	if len(e.queue) >= e.depth {
		e.totals.Rejected++
		return Status{}, ErrQueueFull
	}
	e.seq++
	j := &job{
		id:      "j" + strconv.FormatInt(e.seq, 10),
		kind:    kind,
		fn:      fn,
		state:   StateQueued,
		created: e.now(),
	}
	e.queue = append(e.queue, j)
	e.jobs[j.id] = j
	e.totals.Submitted++
	e.cond.Signal()
	return e.statusLocked(j), nil
}

// Get returns the job's status, or ErrNotFound for unknown/expired ids.
func (e *Engine) Get(id string) (Status, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked()
	j, ok := e.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return e.statusLocked(j), nil
}

// Cancel cancels the job: a queued job flips to cancelled in place (the
// worker that pops it will skip it), a running job has its context
// cancelled and finishes as cancelled once its body returns. Cancelling
// a finished job fails with ErrFinished; unknown ids with ErrNotFound.
func (e *Engine) Cancel(id string) (Status, error) {
	e.mu.Lock()
	e.sweepLocked()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return Status{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		// Remove the job from the waiting line so its admission slot
		// frees immediately (a tombstone left in the queue would keep
		// answering ErrQueueFull for work that no longer exists).
		for i, q := range e.queue {
			if q == j {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				break
			}
		}
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = e.now()
		e.totals.Cancelled++
		st := e.statusLocked(j)
		e.mu.Unlock()
		return st, nil
	case StateRunning:
		j.cancelReq = true
		cancel := j.cancel
		st := e.statusLocked(j)
		e.mu.Unlock()
		cancel()
		return st, nil
	default:
		st := e.statusLocked(j)
		e.mu.Unlock()
		return st, ErrFinished
	}
}

// Stats returns the engine's aggregate bookkeeping.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked()
	states := make(map[State]int, 5)
	for _, s := range States() {
		states[s] = 0
	}
	for _, j := range e.jobs {
		states[j.state]++
	}
	// Queued jobs and the waiting line are the same set by construction
	// (cancel removes from both), so the depth is the state count.
	return Stats{
		Workers:       e.workers,
		QueueDepth:    states[StateQueued],
		QueueCapacity: e.depth,
		States:        states,
		Totals:        e.totals,
	}
}

// statusLocked snapshots j under the engine mutex.
func (e *Engine) statusLocked(j *job) Status {
	done, total := j.progress.Snapshot()
	st := Status{
		ID:              j.id,
		Kind:            j.kind,
		State:           j.state,
		Done:            done,
		Total:           total,
		CancelRequested: j.cancelReq && j.state == StateRunning,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// sweepLocked drops finished jobs whose TTL elapsed. Called under the
// engine mutex from every public entry point, so the store is bounded
// by traffic without a janitor goroutine.
func (e *Engine) sweepLocked() {
	cutoff := e.now().Add(-e.ttl)
	for id, j := range e.jobs {
		if j.state.Finished() && j.finished.Before(cutoff) {
			delete(e.jobs, id)
			e.totals.Expired++
		}
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	e.mu.Lock()
	for {
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 { // closed and drained
			e.mu.Unlock()
			return
		}
		j := e.queue[0]
		e.queue = e.queue[1:]
		// Cancelled jobs never reach here — Cancel removes them from the
		// waiting line — so j is always genuinely queued.
		ctx, cancel := context.WithCancel(e.baseCtx)
		j.state = StateRunning
		j.cancel = cancel
		e.mu.Unlock()

		result, err := runBody(j.fn, ctx, &j.progress)
		cancel()

		e.mu.Lock()
		j.finished = e.now()
		switch {
		case err == nil:
			j.state = StateDone
			j.result = result
			e.totals.Done++
		case j.cancelReq || errors.Is(err, context.Canceled):
			j.state = StateCancelled
			j.err = context.Canceled
			e.totals.Cancelled++
		default:
			j.state = StateFailed
			j.err = err
			e.totals.Failed++
		}
	}
}

// runBody isolates the job body: a panic becomes a failed job, not a
// dead worker.
func runBody(fn Func, ctx context.Context, p *Progress) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: job panicked: %v", r)
		}
	}()
	return fn(ctx, p)
}
