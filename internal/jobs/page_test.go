package jobs

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestPageBasics pins the Page contract on a small fixed population:
// admission order, limit, cursor continuation, state filters, and the
// more flag.
func TestPageBasics(t *testing.T) {
	t.Parallel()
	e := New(Config{Workers: 1, Queue: 16})
	defer e.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := e.Submit("blocker", block(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 5; i++ {
		if _, err := e.Submit("waiter", block(nil, release)); err != nil {
			t.Fatal(err)
		}
	}
	items, next, more := e.Page(0, 4, nil)
	if len(items) != 4 || !more || next != 4 {
		t.Fatalf("first page: %d items, next %d, more %v", len(items), next, more)
	}
	for i, st := range items {
		if st.Seq != int64(i+1) || st.ID != items[i].ID {
			t.Fatalf("page out of admission order: %+v", items)
		}
	}
	items, next, more = e.Page(next, 4, nil)
	if len(items) != 2 || more || next != 6 {
		t.Fatalf("second page: %d items, next %d, more %v", len(items), next, more)
	}
	// State filter: exactly one job is running, the rest are queued.
	running, _, _ := e.Page(0, 10, map[State]bool{StateRunning: true})
	if len(running) != 1 || running[0].ID != "j1" {
		t.Fatalf("running filter: %+v", running)
	}
	queued, _, _ := e.Page(0, 10, map[State]bool{StateQueued: true})
	if len(queued) != 5 {
		t.Fatalf("queued filter: %+v", queued)
	}
	// An empty page beyond the population.
	items, next, more = e.Page(100, 4, nil)
	if len(items) != 0 || more || next != 100 {
		t.Fatalf("empty page: %d items, next %d, more %v", len(items), next, more)
	}
}

// TestPagePropertyWalk is the pagination property test: for random job
// populations and random page limits, walking the cursor yields every
// surviving job exactly once, in strictly increasing admission order,
// with no duplicates — even while jobs complete, get cancelled, and
// expire between pages.
func TestPagePropertyWalk(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{1, 7, 42, 1234, 99991} {
		seed := seed
		t.Run(time.Unix(seed, 0).UTC().Format("seed-150405"), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			clock := &fakeClock{t: time.Unix(10000, 0)}
			e := New(Config{Workers: 2, Queue: 1024, TTL: 10 * time.Minute, Now: clock.Now})
			defer e.Close()

			n := 40 + rng.Intn(160)
			releases := make(map[string]chan struct{})
			var blocked []string
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					// An instant job: completes as soon as a worker frees.
					if _, err := e.Submit("quick", func(context.Context, *Progress) (any, error) {
						return "ok", nil
					}); err != nil {
						t.Fatal(err)
					}
					continue
				}
				release := make(chan struct{})
				st, err := e.Submit("slow", block(nil, release))
				if err != nil {
					t.Fatal(err)
				}
				releases[st.ID] = release
				blocked = append(blocked, st.ID)
			}
			defer func() {
				for _, ch := range releases {
					close(ch)
				}
			}()

			seen := make(map[string]int)
			lastSeq := int64(-1)
			after := int64(0)
			for {
				limit := 1 + rng.Intn(17)
				items, next, more := e.Page(after, limit, nil)
				for _, st := range items {
					if st.Seq <= lastSeq {
						t.Fatalf("seq went backwards: %d after %d", st.Seq, lastSeq)
					}
					lastSeq = st.Seq
					seen[st.ID]++
				}
				after = next
				if !more {
					break
				}
				// Churn between pages: release some blocked jobs, cancel
				// some, and advance the clock so finished jobs expire.
				for i := 0; i < 3 && len(blocked) > 0; i++ {
					k := rng.Intn(len(blocked))
					id := blocked[k]
					blocked = append(blocked[:k], blocked[k+1:]...)
					switch rng.Intn(2) {
					case 0:
						close(releases[id])
						delete(releases, id)
					case 1:
						if _, err := e.Cancel(id); err != nil {
							t.Fatalf("cancel %s: %v", id, err)
						}
					}
				}
				if rng.Intn(2) == 0 {
					clock.Advance(time.Duration(rng.Intn(8)) * time.Minute)
				}
			}

			for id, count := range seen {
				if count != 1 {
					t.Fatalf("job %s yielded %d times", id, count)
				}
			}
			// Every job still alive at the end of the walk was yielded:
			// jobs only disappear (expire), they never move, so anything
			// present now was present on its page when the cursor passed.
			final, _, more := e.Page(0, 100000, nil)
			if more {
				t.Fatal("final full page reported more")
			}
			for _, st := range final {
				if seen[st.ID] != 1 {
					t.Fatalf("job %s (state %s) survived the walk but was never yielded", st.ID, st.State)
				}
			}
			// And a filtered walk yields a subset with the same ordering
			// guarantees.
			lastSeq, after = -1, 0
			for {
				items, next, more := e.Page(after, 1+rng.Intn(7), map[State]bool{StateDone: true, StateCancelled: true})
				for _, st := range items {
					if st.State != StateDone && st.State != StateCancelled {
						t.Fatalf("filter leaked state %s", st.State)
					}
					if st.Seq <= lastSeq {
						t.Fatalf("filtered seq went backwards: %d after %d", st.Seq, lastSeq)
					}
					lastSeq = st.Seq
				}
				after = next
				if !more {
					break
				}
			}
		})
	}
}
