// Package journaltest is the fault-injection test harness for the
// durable job store: it runs a real lphd process and subjects it to
// the failure under test — SIGKILL mid-job (no shutdown path runs; the
// only survivor is what the journal fsynced) or SIGTERM (the graceful
// drain: running jobs finish, queued jobs stay journaled, the process
// exits clean) — then restarts it on the same journal directory and
// lets tests assert over the HTTP API that done results survived
// byte-for-byte, interrupted jobs re-ran, and nothing ran twice.
//
// The lphd binary is whatever the caller passes — cmd/lphd's tests
// re-exec their own test binary through a TestMain hook, so the
// harness needs no `go build` step and the whole kill/restart cycle
// runs under -race.
//
// The package also hosts GuardTempDirs, the tmpdir-hygiene TestMain
// wrapper used by the journal-adjacent packages: tests that leak files
// outside t.TempDir() (into the package directory or os.TempDir())
// fail the run.
package journaltest

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// listenLine matches the startup line of any of the repo's daemons
// (lphd, lphrouter): "<name>: listening on http://<addr>". Keep in
// sync with cmd/lphd and cmd/lphrouter — the :0 port discovery of
// every process harness scrapes this line.
var listenLine = regexp.MustCompile(`lph\w*: listening on http://(\S+)`)

// Proc is one managed lphd process.
type Proc struct {
	tb      testing.TB
	cmd     *exec.Cmd
	logPath string
	waited  bool // set once WaitExit reaped the process
	// Addr is the host:port scraped from the startup line.
	Addr string
}

// Start launches bin with the given args and extra environment,
// captures its output in a log file under t.TempDir(), and waits for
// the listening line. The process is killed at test cleanup if the
// test did not kill it itself.
func Start(tb testing.TB, bin string, env []string, args ...string) *Proc {
	tb.Helper()
	logPath := filepath.Join(tb.TempDir(), "lphd.log")
	logFile, err := os.Create(logPath)
	if err != nil {
		tb.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		tb.Fatalf("journaltest: start %s: %v", bin, err)
	}
	logFile.Close() // the child holds its own descriptor
	p := &Proc{tb: tb, cmd: cmd, logPath: logPath}
	tb.Cleanup(p.Kill)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(p.Log()); m != nil {
			p.Addr = m[1]
			return p
		}
		if state := cmd.ProcessState; state != nil {
			tb.Fatalf("journaltest: lphd exited before listening:\n%s", p.Log())
		}
		if time.Now().After(deadline) {
			tb.Fatalf("journaltest: lphd never printed the listen line:\n%s", p.Log())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Log returns the process output captured so far.
func (p *Proc) Log() string {
	data, err := os.ReadFile(p.logPath)
	if err != nil {
		return ""
	}
	return string(data)
}

// Kill sends SIGKILL and reaps the process — the crash under test: no
// handler runs, no flush happens, nothing survives but fsynced bytes.
// Safe to call twice, and a no-op after WaitExit reaped the process.
func (p *Proc) Kill() {
	if !p.waited && p.cmd.Process != nil && p.cmd.ProcessState == nil {
		_ = p.cmd.Process.Kill()
		_, _ = p.cmd.Process.Wait()
	}
}

// Signal forwards sig to the process. SIGTERM is the graceful-drain
// trigger under test — the shutdown handler runs, unlike Kill's
// SIGKILL, which is precisely the contrast the drain tests assert.
func (p *Proc) Signal(sig os.Signal) {
	p.tb.Helper()
	if p.cmd.Process == nil {
		p.tb.Fatal("journaltest: Signal before Start")
	}
	if err := p.cmd.Process.Signal(sig); err != nil {
		p.tb.Fatalf("journaltest: signal %v: %v", sig, err)
	}
}

// WaitExit waits for the process to exit on its own and returns its
// exit code — drain tests assert a clean 0 after SIGTERM, where the
// SIGKILL harness never sees a voluntary exit. A process still alive
// after the timeout is killed and the test fails.
func (p *Proc) WaitExit(timeout time.Duration) int {
	p.tb.Helper()
	watchdog := time.AfterFunc(timeout, func() { _ = p.cmd.Process.Kill() })
	err := p.cmd.Wait()
	timedOut := !watchdog.Stop()
	p.waited = true
	if timedOut {
		p.tb.Fatalf("journaltest: process did not exit within %v (killed):\n%s", timeout, p.Log())
	}
	code := p.cmd.ProcessState.ExitCode()
	if err != nil && code == -1 {
		p.tb.Fatalf("journaltest: wait: %v\n%s", err, p.Log())
	}
	return code
}

// URL joins a path onto the process's base URL.
func (p *Proc) URL(path string) string { return "http://" + p.Addr + path }

// Do issues one HTTP request and returns the status code and raw body
// bytes (raw, so crash tests can assert byte identity across restarts).
func (p *Proc) Do(method, path, body string) (int, []byte) {
	p.tb.Helper()
	return p.DoHeader(method, path, body, nil)
}

// DoHeader is Do with extra request headers — the idempotency tests
// set Idempotency-Key on retried submits.
func (p *Proc) DoHeader(method, path, body string, hdr map[string]string) (int, []byte) {
	p.tb.Helper()
	req, err := http.NewRequest(method, p.URL(path), strings.NewReader(body))
	if err != nil {
		p.tb.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		p.tb.Fatalf("journaltest: %s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		p.tb.Fatal(err)
	}
	return resp.StatusCode, b
}

// WaitJob polls GET /v1/jobs/{id} until the body reports the wanted
// state, returning the raw body of the matching response.
func (p *Proc) WaitJob(id, want string, timeout time.Duration) []byte {
	p.tb.Helper()
	needle := fmt.Sprintf("%q:%q", "state", want)
	deadline := time.Now().Add(timeout)
	for {
		code, body := p.Do(http.MethodGet, "/v1/jobs/"+id, "")
		if code == http.StatusOK && strings.Contains(string(body), needle) {
			return body
		}
		if time.Now().After(deadline) {
			p.tb.Fatalf("journaltest: job %s never reached %s; last body (status %d): %s\nprocess log:\n%s",
				id, want, code, body, p.Log())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// guardPrefixes are the os.TempDir() names our packages would create if
// they bypassed t.TempDir(); only these are checked there, so t.TempDir
// churn from concurrently running test packages cannot flake the guard.
var guardPrefixes = []string{"jrnl", "journal", "lphd"}

// GuardTempDirs runs m and fails the package if the run left new files
// behind in the package directory or journal-shaped files in
// os.TempDir() — every test must confine its files to t.TempDir().
// Use from TestMain:
//
//	func TestMain(m *testing.M) { os.Exit(journaltest.GuardTempDirs(m)) }
func GuardTempDirs(m *testing.M) int {
	before := guardSnapshot()
	code := m.Run()
	var leaked []string
	for name := range guardSnapshot() {
		if !before[name] {
			leaked = append(leaked, name)
		}
	}
	if len(leaked) > 0 {
		fmt.Fprintf(os.Stderr, "tmpdir hygiene: tests leaked files outside t.TempDir(): %v\n", leaked)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// guardSnapshot lists the guarded locations: everything in the package
// directory, and journal-shaped names in os.TempDir().
func guardSnapshot() map[string]bool {
	seen := make(map[string]bool)
	if ents, err := os.ReadDir("."); err == nil {
		for _, e := range ents {
			seen["./"+e.Name()] = true
		}
	}
	if ents, err := os.ReadDir(os.TempDir()); err == nil {
		for _, e := range ents {
			for _, prefix := range guardPrefixes {
				if strings.HasPrefix(e.Name(), prefix) {
					seen[filepath.Join(os.TempDir(), e.Name())] = true
				}
			}
		}
	}
	return seen
}
