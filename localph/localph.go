// Package localph is the public facade of this repository: a Go
// implementation of the locally polynomial hierarchy of Reiter's
// "A LOCAL View of the Polynomial Hierarchy" (PODC 2024).
//
// The heavy lifting lives in the internal packages; this facade re-exports
// the types and constructors a downstream user needs:
//
//   - labeled graphs, identifier assignments, and structural
//     representations (internal/graph, internal/structure);
//   - locally polynomial machines in two flavors — the faithful
//     three-tape distributed Turing machines of Section 4 (internal/dtm)
//     and the practical functional engine (internal/simulate);
//   - the hierarchy itself: arbiters, levels, certificate bounds, and the
//     Eve/Adam game evaluation (internal/core, internal/cert);
//   - the logic with bounded quantifiers and the Section 5.2 example
//     formulas (internal/logic);
//   - locally polynomial reductions, including the distributed Cook–Levin
//     machinery (internal/reduce);
//   - pictures and tiling systems (internal/pictures).
//
// See examples/ for end-to-end usage and DESIGN.md for the map from paper
// sections to packages.
package localph

import (
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/simulate"
	"repro/internal/structure"
)

// Graph is a finite, simple, undirected, connected, labeled graph.
type Graph = graph.Graph

// Edge is an undirected edge between node indices.
type Edge = graph.Edge

// IDAssignment maps nodes to identifier bit strings.
type IDAssignment = graph.IDAssignment

// NewGraph constructs and validates a labeled graph.
func NewGraph(n int, edges []Edge, labels []string) (*Graph, error) {
	return graph.New(n, edges, labels)
}

// SmallLocallyUnique constructs the small rid-locally unique identifier
// assignment of Remark 3.
func SmallLocallyUnique(g *Graph, rid int) IDAssignment {
	return graph.SmallLocallyUnique(g, rid)
}

// Rep is the structural representation $G of a labeled graph (Figure 5).
type Rep = structure.Rep

// NewRep builds $G.
func NewRep(g *Graph) *Rep { return structure.NewRep(g) }

// Machine is a synchronous distributed algorithm in functional form.
type Machine = simulate.Machine

// Input is a node's initial local information.
type Input = simulate.Input

// Run executes a machine on a graph; see simulate.Run.
var Run = simulate.Run

// Decide runs a machine without certificates and reports unanimous
// acceptance.
var Decide = simulate.Decide

// Arbiter is a locally polynomial machine together with its level and
// certificate bound: the central object of the locally polynomial
// hierarchy (Section 4).
type Arbiter = core.Arbiter

// Level identifies a class Σ^lp_ℓ or Π^lp_ℓ.
type Level = core.Level

// Sigma and Pi name hierarchy levels.
var (
	Sigma = core.Sigma
	Pi    = core.Pi
)

// Strategy produces a player's certificate assignment.
type Strategy = core.Strategy

// CertAssignment is a certificate assignment κ.
type CertAssignment = cert.Assignment

// CertBound is the (r,p) certificate-size bound.
type CertBound = cert.Bound

// Polynomial is a nonnegative-coefficient polynomial used in bounds.
type Polynomial = cert.Polynomial

// Formula is a formula of the logic of Section 5.
type Formula = logic.Formula

// EvalOptions configure second-order enumeration.
type EvalOptions = logic.Options

// SatFormula evaluates a sentence on a structure.
var SatFormula = logic.Sat
