package localph

import (
	"testing"

	"repro/internal/arbiters"
	"repro/internal/cert"
	"repro/internal/logic"
	"repro/internal/simulate"
)

// TestFacadeEndToEnd exercises the public API exactly as the quickstart
// example does.
func TestFacadeEndToEnd(t *testing.T) {
	t.Parallel()
	g, err := NewGraph(5, []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
	}, []string{"1", "1", "1", "1", "1"})
	if err != nil {
		t.Fatal(err)
	}
	id := SmallLocallyUnique(g, 1)
	ok, err := Decide(arbiters.AllSelected(), g, id, simulate.Options{})
	if err != nil || !ok {
		t.Fatalf("Decide = %v, %v", ok, err)
	}
	arb := &Arbiter{
		Machine:  arbiters.ThreeColorable(),
		Level:    Sigma(1),
		RadiusID: 1,
		Bound:    CertBound{R: 1, P: Polynomial{0, 2}},
	}
	ok, err = arb.StrategyGameValue(g, id,
		[]Strategy{arbiters.ColoringStrategy(3)}, []cert.Domain{{}})
	if err != nil || !ok {
		t.Fatalf("game = %v, %v", ok, err)
	}
	rep := NewRep(g)
	opts := logic.NodeRestricted(rep, logic.ColorNames(3)...)
	fval, err := SatFormula(rep.Structure, logic.ThreeColorable(), opts)
	if err != nil || !fval {
		t.Fatalf("formula = %v, %v", fval, err)
	}
}

func TestLevelNames(t *testing.T) {
	t.Parallel()
	if Sigma(1).String() != "Σ^lp_1" || Pi(2).String() != "Π^lp_2" {
		t.Fatal("level naming broken through the facade")
	}
}
