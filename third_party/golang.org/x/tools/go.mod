// Local vendor of the golang.org/x/tools subset this repository's
// lint suite builds on (go/analysis, go/ast/inspector, go/cfg and the
// inspect pass). The files are copied verbatim from the Go toolchain's
// own vendored copy (GOROOT/src/cmd/vendor/golang.org/x/tools,
// x/tools v0.28.1 era) because the build environment is offline; the
// main module reaches it through a replace directive. See LICENSE.
module golang.org/x/tools

go 1.24
