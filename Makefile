# Single verify entry point: `make check` runs formatting, vet, build,
# the full race-enabled test suite, and a short fuzz smoke of the graph
# JSON decoder (see DESIGN.md). `make help` lists the targets.

GO ?= go

.PHONY: check fmt vet build test fuzz bench help

check: fmt vet build test fuzz

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# fuzz smoke-runs FuzzReadGraph for 5s against the malformed-JSON corpus
# (trailing data, truncated arrays): no panics, error-or-valid-graph.
fuzz:
	$(GO) test -run=- -fuzz=Fuzz -fuzztime=5s ./internal/graphio

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

help:
	@echo "make check  - fmt + vet + build + race tests + graphio fuzz smoke (the verify entry point)"
	@echo "make fmt    - fail if gofmt would change any file"
	@echo "make vet    - go vet ./..."
	@echo "make build  - go build ./..."
	@echo "make test   - go test -race ./..."
	@echo "make fuzz   - go test -run=- -fuzz=Fuzz -fuzztime=5s ./internal/graphio"
	@echo "make bench  - smoke-run every benchmark once"
