# Single verify entry point: `make check` runs formatting, vet, the
# custom lint suite (cmd/lphlint), the optional deep static gate
# (staticcheck + govulncheck, skipped when unobtainable offline), build,
# the full race-enabled test suite, and short fuzz smokes of the graph
# JSON decoder and the service request decoder (see DESIGN.md).
# `make help` lists the targets.

GO ?= go

# BENCHTIME is the per-benchmark budget of the recorded bench-json run.
# It must be a duration, not an iteration count: the PR 5–7 BENCH files
# were recorded with -benchtime 1x, whose single iteration made every
# ns/op a one-sample coin flip and the recorded speedup ratios noise.
# 200ms gives the fast benchmarks thousands of iterations and even the
# slowest several, so the cross-PR deltas bench-delta gates on are
# statistically meaningful.
BENCHTIME ?= 200ms

# Pinned external analyzers for the deep-static gate. The hermetic image
# has no module proxy, so the targets probe for the tool (on PATH or via
# `go run pkg@version`) and skip with a notice when neither works;
# on a networked machine the same targets enforce for real.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1
GOVULNCHECK := golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: check fmt vet vet-journal lint staticcheck govulncheck build test test-lifecycle fuzz bench bench-json bench-delta serve-smoke router-smoke help

check: fmt vet vet-journal lint staticcheck govulncheck build test test-lifecycle fuzz

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# vet-journal is the explicit vet gate on the durability surface: the
# journal, its harness, and the engine that replays it must stay
# vet-clean even if the repo-wide vet list ever narrows.
vet-journal:
	$(GO) vet ./internal/journal ./internal/journaltest ./internal/jobs

# lint runs the repository's own go/analysis suite (internal/lint via
# cmd/lphlint): cancellation polling in the engines, clock injection,
# stats/metrics parity, fsync-before-rename in the journal, and
# goroutine supervision. See DESIGN.md "Static analysis".
lint:
	$(GO) run ./cmd/lphlint ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif GOFLAGS= $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		GOFLAGS= $(GO) run $(STATICCHECK) ./...; \
	else \
		echo "staticcheck: not on PATH and $(STATICCHECK) unobtainable (hermetic build); skipped"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	elif GOFLAGS= $(GO) run $(GOVULNCHECK) -version >/dev/null 2>&1; then \
		GOFLAGS= $(GO) run $(GOVULNCHECK) ./...; \
	else \
		echo "govulncheck: not on PATH and $(GOVULNCHECK) unobtainable (hermetic build); skipped"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# test-lifecycle re-runs the zero-downtime suite — graceful drain,
# load-shedding, idempotent submits, and the SIGTERM fault-injection
# harness — twice under the race detector. -count=2 defeats test
# caching and catches order- and state-dependent flakes in exactly the
# code whose whole point is concurrent shutdown.
test-lifecycle:
	$(GO) test -race -count=2 -run 'Drain|Idempoten|Shed|Saturat|RetryStorm' \
		./internal/jobs ./internal/service ./cmd/lphd

# fuzz smoke-runs the fuzzers for 5s each: FuzzReadGraph over
# the malformed-graph corpus (trailing data, truncated arrays),
# FuzzDecodeRequest over service request bodies wrapping that corpus,
# FuzzIdempotencyKey over the strict Idempotency-Key validator,
# FuzzReplayJournal over truncated/bit-flipped/garbage-extended
# journal segments, and FuzzTraceparent over inbound W3C traceparent
# headers (an invalid header must start a fresh trace, never error).
# Invariant for all: no panics; the journal replay additionally
# recovers every record before the first corruption.
fuzz:
	$(GO) test -run=- -fuzz=FuzzReadGraph -fuzztime=5s ./internal/graphio
	$(GO) test -run=- -fuzz=FuzzDecodeRequest -fuzztime=5s ./internal/service
	$(GO) test -run=- -fuzz=FuzzIdempotencyKey -fuzztime=5s ./internal/service
	$(GO) test -run=- -fuzz=FuzzReplayJournal -fuzztime=5s ./internal/journal
	$(GO) test -run=- -fuzz=FuzzMemoKey -fuzztime=5s ./internal/core
	$(GO) test -run=- -fuzz=FuzzTraceparent -fuzztime=5s ./internal/obs

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json records the perf trajectory machine-readably: every
# benchmark for $(BENCHTIME), through `go test -json`, post-processed by
# cmd/benchjson into a sorted JSON array (see DESIGN.md). Everything is
# recorded -count 3 so bench-delta has samples to aggregate (minima for
# the cross-file engine gate, medians for the in-file overhead gate);
# the traced verify pair runs four extra times before the full suite so
# its median rests on seven interleaved samples.
bench-json:
	( $(GO) test -run '^$$' -bench BenchmarkTracedVerify -benchtime $(BENCHTIME) -count 4 -json ./internal/service ; \
	  $(GO) test -run '^$$' -bench BenchmarkRouterHop -benchtime $(BENCHTIME) -count 4 -json ./internal/router ; \
	  $(GO) test -run '^$$' -bench . -benchtime $(BENCHTIME) -count 3 -json ./... ) \
	  | $(GO) run ./cmd/benchjson > BENCH_pr10.json
	@echo "wrote BENCH_pr10.json"

# bench-delta gates the recorded run against the previous PR's file:
# any engine-pair benchmark (/sequential or /parallel) present in both
# files may not regress by more than the tolerance; within the new
# file the traced verify arm may not exceed the untraced one by more
# than the overhead budget, and the routed decide arm may not exceed
# the direct one by more than the router-hop budget (the hop buys
# affinity and failover; it must never cost more than the game). Not
# part of `make check` — benchmark wall-clock on shared CI hardware is
# advisory — but run before recording a new BENCH file.
bench-delta:
	$(GO) run ./cmd/benchdelta -old BENCH_pr9.json -new BENCH_pr10.json -tolerance 0.10 -overhead 0.10 -hop 2.0

# serve-smoke boots lphd on a random port and walks the documented API
# end to end: decide, verify, healthz (exact bodies), a two-graph
# /v1/batch, an async /v1/jobs experiment polled to completion, a
# /metrics scrape, and the trace walk — a verify carrying a fixed
# traceparent must echo its trace id in the X-Lph-Trace header, in
# /v1/debug/traces, and in the JSON request log line on stderr — then
# the full crash-recovery walk: a journaled
# lphd takes SIGKILL mid-sweep and is restarted on the same journal
# dir, which must serve the finished result byte-identically and
# re-run the interrupted and queued jobs to done. It closes with the
# zero-downtime drain walk: SIGTERM mid-sweep must answer 503 to new
# writes while draining, let the sweep finish, exit 0 with a drained
# summary, and the next restart must replay everything as finished
# (restarted=0 — a graceful drain re-runs nothing); finally
# POST /v1/admin/drain must drain an idle instance the same way.
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$pid $$jpid 2>/dev/null || true; rm -rf $$tmp' EXIT INT TERM; \
	$(GO) build -o $$tmp/lphd ./cmd/lphd; \
	$$tmp/lphd -addr 127.0.0.1:0 -workers 2 -cache 8 >$$tmp/out 2>&1 & pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's#^lphd: listening on http://##p' $$tmp/out); \
		[ -n "$$addr" ] && break; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "lphd never came up:"; cat $$tmp/out; exit 1; }; \
	echo "lphd on $$addr"; \
	body=$$(curl -sf http://$$addr/v1/healthz); \
	[ "$$body" = '{"ok":true}' ] || { echo "healthz body: $$body"; exit 1; }; \
	printf '{"graph":%s,"property":"all-selected"}' "$$(cat examples/graphs/triangle-selected.json)" >$$tmp/decide.json; \
	body=$$(curl -sf -X POST --data-binary @$$tmp/decide.json http://$$addr/v1/decide); \
	want='{"op":"decide","name":"all-selected","holds":true,"cached":false,"workers":2}'; \
	[ "$$body" = "$$want" ] || { echo "decide body: $$body"; echo "want:        $$want"; exit 1; }; \
	printf '{"graph":%s,"property":"3-colorable"}' "$$(cat examples/graphs/c5.json)" >$$tmp/verify.json; \
	body=$$(curl -sf -X POST --data-binary @$$tmp/verify.json http://$$addr/v1/verify); \
	want='{"op":"verify","name":"3-colorable","holds":true,"cached":false,"workers":2}'; \
	[ "$$body" = "$$want" ] || { echo "verify body: $$body"; echo "want:        $$want"; exit 1; }; \
	printf '{"op":"decide","property":"all-selected","graphs":[%s,%s]}' \
		"$$(cat examples/graphs/triangle-selected.json)" "$$(cat examples/graphs/triangle-mixed.json)" >$$tmp/batch.json; \
	body=$$(curl -sf -X POST --data-binary @$$tmp/batch.json http://$$addr/v1/batch); \
	want='{"op":"batch","verb":"decide","name":"all-selected","workers":2,"failed":0,"results":[{"index":0,"holds":true,"cached":true},{"index":1,"holds":false,"cached":false}]}'; \
	[ "$$body" = "$$want" ] || { echo "batch body: $$body"; echo "want:       $$want"; exit 1; }; \
	body=$$(curl -sf -X POST -d '{"job":"experiment","name":"figure5"}' http://$$addr/v1/jobs); \
	case "$$body" in '{"id":"j1","kind":"experiment","state":"queued"'*) ;; \
		*) echo "jobs submit body: $$body"; exit 1;; esac; \
	state=""; \
	for i in $$(seq 1 100); do \
		state=$$(curl -sf http://$$addr/v1/jobs/j1); \
		case "$$state" in *'"state":"done"'*) break;; esac; \
		sleep 0.1; \
	done; \
	case "$$state" in \
		*'"state":"done"'*'"ok":true'*) ;; \
		*) echo "job never finished ok: $$state"; exit 1;; \
	esac; \
	metrics=$$(curl -sf http://$$addr/metrics); \
	for m in lphd_requests_total lphd_cache_hits_total 'lphd_jobs_done_total 1' 'lphd_jobs{state="done"} 1' lphd_request_duration_seconds_bucket 'lphd_phase_duration_seconds_bucket{phase="engine"' lphd_build_info lphd_process_start_time_seconds; do \
		case "$$metrics" in *"$$m"*) ;; \
			*) echo "metrics scrape misses $$m"; exit 1;; esac; \
	done; \
	tid=4bf92f3577b34da6a3ce929d0e0e4736; \
	hdr=$$(curl -sf -D - -o /dev/null -X POST -H "traceparent: 00-$$tid-00f067aa0ba902b7-01" \
		--data-binary @$$tmp/verify.json http://$$addr/v1/verify | tr -d '\r' | sed -n 's/^X-Lph-Trace: //p'); \
	[ "$$hdr" = "$$tid" ] || { echo "X-Lph-Trace: $$hdr, want $$tid"; exit 1; }; \
	traces=$$(curl -sf "http://$$addr/v1/debug/traces?route=POST%20/v1/verify&limit=5"); \
	case "$$traces" in *"$$tid"*) ;; *) echo "debug traces miss $$tid: $$traces"; exit 1;; esac; \
	grep -q "\"trace\":\"$$tid\"" $$tmp/out || { echo "request log line missing trace id:"; cat $$tmp/out; exit 1; }; \
	kill $$pid 2>/dev/null; \
	echo "API walk OK (trace id propagated); starting crash-recovery walk"; \
	$$tmp/lphd -addr 127.0.0.1:0 -workers 2 -job-workers 1 -journal $$tmp/journal >$$tmp/crash1 2>&1 & jpid=$$!; \
	jaddr=""; \
	for i in $$(seq 1 100); do \
		jaddr=$$(sed -n 's#^lphd: listening on http://##p' $$tmp/crash1); \
		[ -n "$$jaddr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$jaddr" ] || { echo "journaled lphd never came up:"; cat $$tmp/crash1; exit 1; }; \
	curl -sf -X POST -d '{"job":"experiment","name":"figure5"}' http://$$jaddr/v1/jobs >/dev/null; \
	before=""; \
	for i in $$(seq 1 300); do \
		before=$$(curl -sf http://$$jaddr/v1/jobs/j1); \
		case "$$before" in *'"state":"done"'*) break;; esac; sleep 0.1; \
	done; \
	case "$$before" in *'"state":"done"'*) ;; *) echo "j1 never finished: $$before"; exit 1;; esac; \
	curl -sf -X POST -d '{"job":"sweep"}' http://$$jaddr/v1/jobs >/dev/null; \
	for i in $$(seq 1 300); do \
		state=$$(curl -sf http://$$jaddr/v1/jobs/j2); \
		case "$$state" in *'"state":"running"'*) break;; esac; sleep 0.05; \
	done; \
	case "$$state" in *'"state":"running"'*) ;; *) echo "j2 never started: $$state"; exit 1;; esac; \
	curl -sf -X POST -d '{"job":"experiment","name":"figure4"}' http://$$jaddr/v1/jobs >/dev/null; \
	kill -9 $$jpid; wait $$jpid 2>/dev/null || true; \
	$$tmp/lphd -addr 127.0.0.1:0 -workers 2 -job-workers 1 -journal $$tmp/journal -drain-timeout 2m >$$tmp/crash2 2>&1 & jpid=$$!; \
	jaddr=""; \
	for i in $$(seq 1 100); do \
		jaddr=$$(sed -n 's#^lphd: listening on http://##p' $$tmp/crash2); \
		[ -n "$$jaddr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$jaddr" ] || { echo "restarted lphd never came up:"; cat $$tmp/crash2; exit 1; }; \
	after=$$(curl -sf http://$$jaddr/v1/jobs/j1); \
	[ "$$after" = "$$before" ] || { echo "j1 not byte-identical after crash:"; echo "before: $$before"; echo "after:  $$after"; exit 1; }; \
	for id in j2 j3; do \
		state=""; \
		for i in $$(seq 1 600); do \
			state=$$(curl -sf http://$$jaddr/v1/jobs/$$id); \
			case "$$state" in *'"state":"done"'*) break;; esac; sleep 0.1; \
		done; \
		case "$$state" in *'"state":"done"'*) ;; \
			*) echo "$$id never re-ran to done after the crash: $$state"; cat $$tmp/crash2; exit 1;; esac; \
	done; \
	jm=$$(curl -sf http://$$jaddr/metrics); \
	for m in 'lphd_journal_replayed_total 1' 'lphd_journal_restarted_total 2' lphd_journal_segments lphd_journal_live_bytes; do \
		case "$$jm" in *"$$m"*) ;; \
			*) echo "journal metrics miss $$m"; exit 1;; esac; \
	done; \
	listing=$$(curl -sf "http://$$jaddr/v1/jobs?limit=2"); \
	case "$$listing" in *'"id":"j1"'*'"id":"j2"'*'"next_cursor"'*) ;; \
		*) echo "paginated listing wrong: $$listing"; exit 1;; esac; \
	cursor=$$(printf '%s' "$$listing" | sed -n 's#.*"next_cursor":"\([^"]*\)".*#\1#p'); \
	page2=$$(curl -sf "http://$$jaddr/v1/jobs?limit=2&cursor=$$cursor"); \
	case "$$page2" in *'"id":"j3"'*) ;; \
		*) echo "cursor page wrong: $$page2"; exit 1;; esac; \
	echo "crash-recovery walk OK; starting drain walk"; \
	curl -sf -X POST -d '{"job":"sweep"}' http://$$jaddr/v1/jobs >/dev/null; \
	for i in $$(seq 1 300); do \
		state=$$(curl -sf http://$$jaddr/v1/jobs/j4); \
		case "$$state" in *'"state":"running"'*) break;; esac; sleep 0.05; \
	done; \
	case "$$state" in *'"state":"running"'*) ;; *) echo "j4 never started: $$state"; exit 1;; esac; \
	kill -TERM $$jpid; \
	hz=""; \
	for i in $$(seq 1 100); do \
		hz=$$(curl -s http://$$jaddr/v1/healthz); \
		case "$$hz" in *'"draining":true'*) break;; esac; sleep 0.05; \
	done; \
	case "$$hz" in *'"draining":true'*) ;; *) echo "healthz never reported draining: $$hz"; exit 1;; esac; \
	code=$$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"job":"experiment","name":"figure4"}' http://$$jaddr/v1/jobs); \
	[ "$$code" = "503" ] || { echo "submit while draining answered $$code, want 503"; exit 1; }; \
	rc=0; wait $$jpid || rc=$$?; \
	[ "$$rc" = "0" ] || { echo "drained lphd exited $$rc, want 0:"; cat $$tmp/crash2; exit 1; }; \
	grep -q '^lphd: drained finished=1 ' $$tmp/crash2 || { echo "no drained summary:"; cat $$tmp/crash2; exit 1; }; \
	$$tmp/lphd -addr 127.0.0.1:0 -workers 2 -job-workers 1 -journal $$tmp/journal >$$tmp/drain2 2>&1 & jpid=$$!; \
	jaddr=""; \
	for i in $$(seq 1 100); do \
		jaddr=$$(sed -n 's#^lphd: listening on http://##p' $$tmp/drain2); \
		[ -n "$$jaddr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$jaddr" ] || { echo "post-drain lphd never came up:"; cat $$tmp/drain2; exit 1; }; \
	grep -q 'restarted=0' $$tmp/drain2 || { echo "graceful drain must re-run nothing:"; cat $$tmp/drain2; exit 1; }; \
	body=$$(curl -sf -X POST http://$$jaddr/v1/admin/drain); \
	[ "$$body" = '{"draining":true}' ] || { echo "admin drain body: $$body"; exit 1; }; \
	rc=0; wait $$jpid || rc=$$?; \
	[ "$$rc" = "0" ] || { echo "admin-drained lphd exited $$rc, want 0:"; cat $$tmp/drain2; exit 1; }; \
	grep -q '^lphd: drained finished=0 interrupted=0 queued=0' $$tmp/drain2 || { echo "idle admin drain summary wrong:"; cat $$tmp/drain2; exit 1; }; \
	echo "serve-smoke OK (incl. crash recovery + graceful drain)"
	@$(MAKE) --no-print-directory router-smoke

# router-smoke is the cluster walk behind the front door: three
# journaled lphd instances behind one lphrouter. It proxies a decide
# (exact body) and a traceparent echo through the router, submits a
# sweep job through the router, finds which node owns it by direct
# query, SIGKILLs that owner mid-sweep, and then issues ten client
# decides through the router — every one must succeed while the
# reconciler is still discovering the corpse (transport-failure hops
# walk to the next ring candidate). The owner restarts on the same
# address and journal and must log restarted=1 (the interrupted sweep
# re-runs); the pool must return to 3 active; the job must reach done
# through the router; and both survivors must still report
# lphd_journal_restarted_total 0 — the chaos never re-ran their work.
router-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$(cat $$tmp/pid* 2>/dev/null) $$rpid 2>/dev/null || true; rm -rf $$tmp' EXIT INT TERM; \
	$(GO) build -o $$tmp/lphd ./cmd/lphd; \
	$(GO) build -o $$tmp/lphrouter ./cmd/lphrouter; \
	nodes=""; \
	for n in 1 2 3; do \
		$$tmp/lphd -addr 127.0.0.1:0 -workers 2 -job-workers 1 -journal $$tmp/j$$n >$$tmp/n$$n 2>&1 & \
		echo $$! > $$tmp/pid$$n; \
		a=""; \
		for i in $$(seq 1 100); do \
			a=$$(sed -n 's#^lphd: listening on http://##p' $$tmp/n$$n); \
			[ -n "$$a" ] && break; sleep 0.1; \
		done; \
		[ -n "$$a" ] || { echo "node $$n never came up:"; cat $$tmp/n$$n; exit 1; }; \
		echo "$$a" > $$tmp/addr$$n; \
		nodes="$$nodes,$$a"; \
	done; \
	nodes=$${nodes#,}; \
	$$tmp/lphrouter -addr 127.0.0.1:0 -nodes "$$nodes" -probe-interval 50ms -probe-timeout 1s -miss-budget 2 >$$tmp/router 2>&1 & rpid=$$!; \
	raddr=""; \
	for i in $$(seq 1 100); do \
		raddr=$$(sed -n 's#^lphrouter: listening on http://##p' $$tmp/router); \
		[ -n "$$raddr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$raddr" ] || { echo "lphrouter never came up:"; cat $$tmp/router; exit 1; }; \
	echo "router on $$raddr over $$nodes"; \
	hz=""; \
	for i in $$(seq 1 100); do \
		hz=$$(curl -s http://$$raddr/v1/router/healthz); \
		case "$$hz" in *'"active":3'*) break;; esac; sleep 0.1; \
	done; \
	case "$$hz" in *'"active":3'*) ;; *) echo "pool never reached 3 active: $$hz"; exit 1;; esac; \
	printf '{"graph":%s,"property":"all-selected"}' "$$(cat examples/graphs/triangle-selected.json)" >$$tmp/decide.json; \
	body=$$(curl -sf -X POST --data-binary @$$tmp/decide.json http://$$raddr/v1/decide); \
	want='{"op":"decide","name":"all-selected","holds":true,"cached":false,"workers":2}'; \
	[ "$$body" = "$$want" ] || { echo "proxied decide body: $$body"; echo "want:               $$want"; exit 1; }; \
	tid=4bf92f3577b34da6a3ce929d0e0e4736; \
	hdr=$$(curl -sf -D - -o /dev/null -X POST -H "traceparent: 00-$$tid-00f067aa0ba902b7-01" \
		--data-binary @$$tmp/decide.json http://$$raddr/v1/decide | tr -d '\r' | sed -n 's/^X-Lph-Trace: //p'); \
	[ "$$hdr" = "$$tid" ] || { echo "router X-Lph-Trace: $$hdr, want $$tid"; exit 1; }; \
	body=$$(curl -sf -X POST -d '{"job":"sweep"}' http://$$raddr/v1/jobs); \
	jid=$$(printf '%s' "$$body" | sed -n 's#.*"id":"\([^"]*\)".*#\1#p'); \
	[ -n "$$jid" ] || { echo "job submit through router: $$body"; exit 1; }; \
	state=""; \
	for i in $$(seq 1 300); do \
		state=$$(curl -sf http://$$raddr/v1/jobs/$$jid); \
		case "$$state" in *'"state":"running"'*) break;; esac; sleep 0.05; \
	done; \
	case "$$state" in *'"state":"running"'*) ;; *) echo "$$jid never started: $$state"; exit 1;; esac; \
	owner=""; \
	for n in 1 2 3; do \
		code=$$(curl -s -o /dev/null -w '%{http_code}' http://$$(cat $$tmp/addr$$n)/v1/jobs/$$jid); \
		[ "$$code" = "200" ] && owner=$$n; \
	done; \
	[ -n "$$owner" ] || { echo "no node owns $$jid"; exit 1; }; \
	oaddr=$$(cat $$tmp/addr$$owner); \
	echo "killing owner node $$owner ($$oaddr) mid-sweep"; \
	opid=$$(cat $$tmp/pid$$owner); \
	kill -9 $$opid; wait $$opid 2>/dev/null || true; \
	for i in $$(seq 1 10); do \
		curl -sf -X POST --data-binary @$$tmp/decide.json http://$$raddr/v1/decide >/dev/null \
			|| { echo "client decide $$i failed during failover"; cat $$tmp/router; exit 1; }; \
	done; \
	pool=""; \
	for i in $$(seq 1 100); do \
		pool=$$(curl -s http://$$raddr/v1/router/pool); \
		case "$$pool" in *'"state":"down"'*) break;; esac; sleep 0.1; \
	done; \
	case "$$pool" in *'"state":"down"'*) ;; *) echo "dead node never evicted: $$pool"; exit 1;; esac; \
	$$tmp/lphd -addr $$oaddr -workers 2 -job-workers 1 -journal $$tmp/j$$owner >$$tmp/restart 2>&1 & \
	echo $$! > $$tmp/pid$$owner; \
	a=""; \
	for i in $$(seq 1 100); do \
		a=$$(sed -n 's#^lphd: listening on http://##p' $$tmp/restart); \
		[ -n "$$a" ] && break; sleep 0.1; \
	done; \
	[ -n "$$a" ] || { echo "owner never came back:"; cat $$tmp/restart; exit 1; }; \
	grep -q 'restarted=1' $$tmp/restart || { echo "owner restart must re-admit the interrupted sweep:"; cat $$tmp/restart; exit 1; }; \
	hz=""; \
	for i in $$(seq 1 100); do \
		hz=$$(curl -s http://$$raddr/v1/router/healthz); \
		case "$$hz" in *'"active":3'*) break;; esac; sleep 0.1; \
	done; \
	case "$$hz" in *'"active":3'*) ;; *) echo "pool never recovered to 3 active: $$hz"; exit 1;; esac; \
	state=""; \
	for i in $$(seq 1 600); do \
		state=$$(curl -sf http://$$raddr/v1/jobs/$$jid); \
		case "$$state" in *'"state":"done"'*) break;; esac; sleep 0.1; \
	done; \
	case "$$state" in *'"state":"done"'*) ;; \
		*) echo "$$jid never re-ran to done through the router: $$state"; cat $$tmp/restart; exit 1;; esac; \
	for n in 1 2 3; do \
		[ "$$n" = "$$owner" ] && continue; \
		m=$$(curl -sf http://$$(cat $$tmp/addr$$n)/metrics); \
		case "$$m" in *'lphd_journal_restarted_total 0'*) ;; \
			*) echo "survivor $$n re-ran work it never lost"; exit 1;; esac; \
	done; \
	echo "router-smoke OK (failover with zero failed client requests; survivors restarted=0)"

help:
	@echo "make check       - fmt + vet + lint + static gate + build + race tests + decoder fuzz smokes (the verify entry point)"
	@echo "make fmt         - fail if gofmt would change any file"
	@echo "make vet         - go vet ./..."
	@echo "make vet-journal - explicit vet gate on journal/journaltest/jobs"
	@echo "make lint        - run the custom go/analysis suite (cmd/lphlint) over the repo"
	@echo "make staticcheck - pinned staticcheck; skips with a notice when unobtainable offline"
	@echo "make govulncheck - pinned govulncheck; skips with a notice when unobtainable offline"
	@echo "make build       - go build ./..."
	@echo "make test        - go test -race ./..."
	@echo "make test-lifecycle - drain/shed/idempotency suite twice under -race (defeats caching, shakes out flakes)"
	@echo "make fuzz        - 5s fuzz smokes: FuzzReadGraph + FuzzDecodeRequest + FuzzIdempotencyKey + FuzzReplayJournal + FuzzMemoKey + FuzzTraceparent"
	@echo "make bench       - smoke-run every benchmark once"
	@echo "make bench-json  - record every benchmark for BENCHTIME (default 200ms) in BENCH_pr10.json"
	@echo "make bench-delta - fail if BENCH_pr10.json regresses an engine pair >10% vs BENCH_pr9.json, tracing overhead >10%, or router hop >2x"
	@echo "make serve-smoke - boot lphd, walk the API (incl. trace propagation), SIGKILL + recovery, SIGTERM drain + admin drain, then router-smoke"
	@echo "make router-smoke - 3-node pool behind lphrouter: SIGKILL the job owner mid-sweep, zero failed client requests, replay on rejoin"
