# Single verify entry point: `make check` runs formatting, vet, build,
# the full race-enabled test suite, and short fuzz smokes of the graph
# JSON decoder and the service request decoder (see DESIGN.md).
# `make help` lists the targets.

GO ?= go

.PHONY: check fmt vet build test fuzz bench bench-json serve-smoke help

check: fmt vet build test fuzz

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# fuzz smoke-runs the two JSON decoders for 5s each: FuzzReadGraph over
# the malformed-graph corpus (trailing data, truncated arrays) and
# FuzzDecodeRequest over service request bodies wrapping that corpus.
# Invariant for both: no panics, error-or-valid-value.
fuzz:
	$(GO) test -run=- -fuzz=FuzzReadGraph -fuzztime=5s ./internal/graphio
	$(GO) test -run=- -fuzz=FuzzDecodeRequest -fuzztime=5s ./internal/service

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json records the perf trajectory machine-readably: every
# benchmark once, through `go test -json`, post-processed by
# cmd/benchjson into a sorted JSON array (see DESIGN.md).
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime 1x -json ./... | $(GO) run ./cmd/benchjson > BENCH_pr4.json
	@echo "wrote BENCH_pr4.json"

# serve-smoke boots lphd on a random port and walks the documented API
# end to end: decide, verify, healthz (exact bodies), a two-graph
# /v1/batch, an async /v1/jobs experiment polled to completion, and a
# /metrics scrape.
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null; rm -rf $$tmp' EXIT INT TERM; \
	$(GO) build -o $$tmp/lphd ./cmd/lphd; \
	$$tmp/lphd -addr 127.0.0.1:0 -workers 2 -cache 8 >$$tmp/out 2>&1 & pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's#^lphd: listening on http://##p' $$tmp/out); \
		[ -n "$$addr" ] && break; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "lphd never came up:"; cat $$tmp/out; exit 1; }; \
	echo "lphd on $$addr"; \
	body=$$(curl -sf http://$$addr/v1/healthz); \
	[ "$$body" = '{"ok":true}' ] || { echo "healthz body: $$body"; exit 1; }; \
	printf '{"graph":%s,"property":"all-selected"}' "$$(cat examples/graphs/triangle-selected.json)" >$$tmp/decide.json; \
	body=$$(curl -sf -X POST --data-binary @$$tmp/decide.json http://$$addr/v1/decide); \
	want='{"op":"decide","name":"all-selected","holds":true,"cached":false,"workers":2}'; \
	[ "$$body" = "$$want" ] || { echo "decide body: $$body"; echo "want:        $$want"; exit 1; }; \
	printf '{"graph":%s,"property":"3-colorable"}' "$$(cat examples/graphs/c5.json)" >$$tmp/verify.json; \
	body=$$(curl -sf -X POST --data-binary @$$tmp/verify.json http://$$addr/v1/verify); \
	want='{"op":"verify","name":"3-colorable","holds":true,"cached":false,"workers":2}'; \
	[ "$$body" = "$$want" ] || { echo "verify body: $$body"; echo "want:        $$want"; exit 1; }; \
	printf '{"op":"decide","property":"all-selected","graphs":[%s,%s]}' \
		"$$(cat examples/graphs/triangle-selected.json)" "$$(cat examples/graphs/triangle-mixed.json)" >$$tmp/batch.json; \
	body=$$(curl -sf -X POST --data-binary @$$tmp/batch.json http://$$addr/v1/batch); \
	want='{"op":"batch","verb":"decide","name":"all-selected","workers":2,"failed":0,"results":[{"index":0,"holds":true,"cached":true},{"index":1,"holds":false,"cached":false}]}'; \
	[ "$$body" = "$$want" ] || { echo "batch body: $$body"; echo "want:       $$want"; exit 1; }; \
	body=$$(curl -sf -X POST -d '{"job":"experiment","name":"figure5"}' http://$$addr/v1/jobs); \
	case "$$body" in '{"id":"j1","kind":"experiment","state":"queued"'*) ;; \
		*) echo "jobs submit body: $$body"; exit 1;; esac; \
	state=""; \
	for i in $$(seq 1 100); do \
		state=$$(curl -sf http://$$addr/v1/jobs/j1); \
		case "$$state" in *'"state":"done"'*) break;; esac; \
		sleep 0.1; \
	done; \
	case "$$state" in \
		*'"state":"done"'*'"ok":true'*) ;; \
		*) echo "job never finished ok: $$state"; exit 1;; \
	esac; \
	metrics=$$(curl -sf http://$$addr/metrics); \
	for m in lphd_requests_total lphd_cache_hits_total 'lphd_jobs_done_total 1' 'lphd_jobs{state="done"} 1' lphd_request_duration_seconds_bucket; do \
		case "$$metrics" in *"$$m"*) ;; \
			*) echo "metrics scrape misses $$m"; exit 1;; esac; \
	done; \
	echo "serve-smoke OK"

help:
	@echo "make check       - fmt + vet + build + race tests + decoder fuzz smokes (the verify entry point)"
	@echo "make fmt         - fail if gofmt would change any file"
	@echo "make vet         - go vet ./..."
	@echo "make build       - go build ./..."
	@echo "make test        - go test -race ./..."
	@echo "make fuzz        - 5s fuzz smokes: FuzzReadGraph (graphio) + FuzzDecodeRequest (service)"
	@echo "make bench       - smoke-run every benchmark once"
	@echo "make bench-json  - record every benchmark machine-readably in BENCH_pr4.json"
	@echo "make serve-smoke - boot lphd and walk decide/verify/healthz/batch/jobs/metrics"
