# Single verify entry point: `make check` runs formatting, vet, build,
# and the full race-enabled test suite (see DESIGN.md).

GO ?= go

.PHONY: check fmt vet build test bench

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
