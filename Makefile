# Single verify entry point: `make check` runs formatting, vet, build,
# the full race-enabled test suite, and short fuzz smokes of the graph
# JSON decoder and the service request decoder (see DESIGN.md).
# `make help` lists the targets.

GO ?= go

.PHONY: check fmt vet build test fuzz bench serve-smoke help

check: fmt vet build test fuzz

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# fuzz smoke-runs the two JSON decoders for 5s each: FuzzReadGraph over
# the malformed-graph corpus (trailing data, truncated arrays) and
# FuzzDecodeRequest over service request bodies wrapping that corpus.
# Invariant for both: no panics, error-or-valid-value.
fuzz:
	$(GO) test -run=- -fuzz=FuzzReadGraph -fuzztime=5s ./internal/graphio
	$(GO) test -run=- -fuzz=FuzzDecodeRequest -fuzztime=5s ./internal/service

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# serve-smoke boots lphd on a random port, curls one decide, one
# verify, and the health endpoint, and asserts the exact bodies — the
# end-to-end proof that the binary serves the documented API.
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'kill $$pid 2>/dev/null; rm -rf $$tmp' EXIT INT TERM; \
	$(GO) build -o $$tmp/lphd ./cmd/lphd; \
	$$tmp/lphd -addr 127.0.0.1:0 -workers 2 -cache 8 >$$tmp/out 2>&1 & pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's#^lphd: listening on http://##p' $$tmp/out); \
		[ -n "$$addr" ] && break; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "lphd never came up:"; cat $$tmp/out; exit 1; }; \
	echo "lphd on $$addr"; \
	body=$$(curl -sf http://$$addr/v1/healthz); \
	[ "$$body" = '{"ok":true}' ] || { echo "healthz body: $$body"; exit 1; }; \
	printf '{"graph":%s,"property":"all-selected"}' "$$(cat examples/graphs/triangle-selected.json)" >$$tmp/decide.json; \
	body=$$(curl -sf -X POST --data-binary @$$tmp/decide.json http://$$addr/v1/decide); \
	want='{"op":"decide","name":"all-selected","holds":true,"cached":false,"workers":2}'; \
	[ "$$body" = "$$want" ] || { echo "decide body: $$body"; echo "want:        $$want"; exit 1; }; \
	printf '{"graph":%s,"property":"3-colorable"}' "$$(cat examples/graphs/c5.json)" >$$tmp/verify.json; \
	body=$$(curl -sf -X POST --data-binary @$$tmp/verify.json http://$$addr/v1/verify); \
	want='{"op":"verify","name":"3-colorable","holds":true,"cached":false,"workers":2}'; \
	[ "$$body" = "$$want" ] || { echo "verify body: $$body"; echo "want:        $$want"; exit 1; }; \
	echo "serve-smoke OK"

help:
	@echo "make check       - fmt + vet + build + race tests + decoder fuzz smokes (the verify entry point)"
	@echo "make fmt         - fail if gofmt would change any file"
	@echo "make vet         - go vet ./..."
	@echo "make build       - go build ./..."
	@echo "make test        - go test -race ./..."
	@echo "make fuzz        - 5s fuzz smokes: FuzzReadGraph (graphio) + FuzzDecodeRequest (service)"
	@echo "make bench       - smoke-run every benchmark once"
	@echo "make serve-smoke - boot lphd on a random port and curl decide/verify/healthz"
