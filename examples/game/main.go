// Game walk-through: plays the two Eve/Adam games of the paper's
// examples — the 3-round 3-colorability game of Example 1 (Figure 1) and
// the Σ^lp_3 spanning-forest game of Example 6 for not-all-selected, run
// against the actual LOCAL-model arbiter machine.
package main

import (
	"fmt"
	"log"

	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/props"
)

func main() {
	// --- Example 1 / Figure 1: the 3-round 3-colorability game. ---
	no := graph.Figure1NoInstance()
	yes := graph.Figure1YesInstance()
	fmt.Println("Figure 1a: 3-colorable =", props.ThreeColorable(no),
		"| 3-round 3-colorable =", props.ThreeRoundThreeColorable(no), "(Adam wins)")
	fmt.Println("Figure 1b: 3-colorable =", props.ThreeColorable(yes),
		"| 3-round 3-colorable =", props.ThreeRoundThreeColorable(yes), "(Eve wins)")

	// --- Example 6: the Σ^lp_3 game for not-all-selected. ---
	// Eve claims some node is unselected by exhibiting a spanning forest
	// rooted at unselected nodes; Adam challenges with a set X; Eve
	// answers with charges Y. The arbiter machine checks everything with
	// two communication rounds.
	g := graph.Cycle(5).MustWithLabels([]string{"1", "1", "0", "1", "1"})
	id := graph.SmallLocallyUnique(g, 1)
	arb := games.NotAllSelectedArbiter()
	ok, err := arb.StrategyGameValue(g, id,
		[]core.Strategy{games.ForestStrategy(games.IsUnselected), nil, games.ChargeStrategy(nil)},
		[]cert.Domain{{}, cert.UniformDomain(g.N(), 1), {}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnot-all-selected on %v\n", g)
	fmt.Println("Σ^lp_3 game value (Eve wins):", ok, "| ground truth:", props.NotAllSelected(g))

	// On an all-selected cycle Eve has no winning first move: whatever
	// forest she claims, Adam finds the flaw.
	all := graph.Cycle(5).MustWithLabels(graph.AllSelectedLabels(5))
	ok, err = arb.StrategyGameValue(all, id,
		[]core.Strategy{games.ForestStrategy(games.IsUnselected), nil, games.ChargeStrategy(nil)},
		[]cert.Domain{{}, cert.UniformDomain(all.N(), 1), {}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnot-all-selected on %v\n", all)
	fmt.Println("Σ^lp_3 game value (Eve wins):", ok, "| ground truth:", props.NotAllSelected(all))

	// The semantic layer evaluates the full game tree (every forest Eve
	// could try, every challenge Adam could raise):
	fmt.Println("\nexhaustive game evaluation (Example 6 semantics):")
	fmt.Println("  cycle with one 0:", games.EveWinsPointsTo(g, games.IsUnselected))
	fmt.Println("  all-selected:    ", games.EveWinsPointsTo(all, games.IsUnselected))
}
