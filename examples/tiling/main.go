// Tiling walk-through: the picture machinery of Section 9.2 — the
// structural representation of Figure 6/14, and tiling systems (the
// automaton model behind the infiniteness proof of the locally polynomial
// hierarchy). The squares system demonstrates a property recognizable by
// tiling systems (hence in existential monadic second-order logic,
// Theorem 32) that no first-order formula captures.
package main

import (
	"fmt"
	"log"

	"repro/internal/pictures"
)

func main() {
	// The 2-bit picture of Figure 6/14.
	p := pictures.MustNew(2, [][]string{
		{"00", "01", "00", "01"},
		{"10", "11", "10", "11"},
		{"00", "01", "00", "01"},
	})
	fmt.Println("picture P:")
	fmt.Println(p)
	rep := p.Rep()
	m, n := rep.Signature()
	fmt.Printf("structural representation $P: %d elements, signature (%d,%d)\n\n",
		rep.Card(), m, n)

	// The squares tiling system: accepts exactly the m×m pictures.
	squares := pictures.SquaresSystem()
	fmt.Println("squares tiling system (diagonal propagation):")
	for rows := 1; rows <= 5; rows++ {
		for cols := 1; cols <= 5; cols++ {
			ok, err := squares.Accepts(pictures.Uniform(0, rows, cols, ""))
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				fmt.Printf("  %dx%d accepted\n", rows, cols)
			}
		}
	}

	// A value-sensitive system: first row ones, rest zeros.
	top := pictures.TopRowOnesSystem()
	good := pictures.MustNew(1, [][]string{{"1", "1", "1"}, {"0", "0", "0"}})
	bad := pictures.MustNew(1, [][]string{{"1", "0", "1"}, {"0", "0", "0"}})
	okGood, err := top.Accepts(good)
	if err != nil {
		log.Fatal(err)
	}
	okBad, err := top.Accepts(bad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-row-ones system: valid picture %v, corrupted picture %v\n", okGood, okBad)

	// Pictures encode as bounded-degree labeled graphs (Section 9.2.2):
	// this is the bridge that transfers the infiniteness of the monadic
	// hierarchy on pictures to the locally polynomial hierarchy on graphs.
	g := p.ToGraph()
	fmt.Printf("\npicture-as-graph: %d nodes, %d edges, labels carry cell bits + orientation\n",
		g.N(), g.NumEdges())
	fmt.Println("corner label:", g.Label(g.N()-1))
}
