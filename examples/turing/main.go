// Turing-machine walk-through: runs the faithful three-tape distributed
// Turing machines of Section 4 (Figure 8) — the paper's formal model of
// locally polynomial computation — and inspects tapes, rounds, and
// step/space usage (the quantities bounded by Lemma 13).
package main

import (
	"fmt"
	"log"

	"repro/internal/dtm"
	"repro/internal/graph"
)

func main() {
	// The all-equal decider: two rounds, real message passing. Each node
	// broadcasts its label, then compares what it received.
	g := graph.Cycle(4).MustWithLabels([]string{"10", "10", "10", "10"})
	id := graph.SmallLocallyUnique(g, 1)
	m := dtm.AllEqualMachine()
	e, err := m.Run(g, id, nil, dtm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all-equal on", g)
	fmt.Println("  accepted:", e.Accepted(), "in", e.Rounds, "rounds")
	for u := 0; u < g.N(); u++ {
		fmt.Printf("  node %d: verdict %q, steps per round %v, peak space %v\n",
			u, e.Result.Label(u), e.Steps[u], e.Space[u])
	}

	// Mutate one label: node 2's neighbors catch the difference.
	bad := g.MustWithLabels([]string{"10", "10", "11", "10"})
	e, err = m.Run(bad, id, nil, dtm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall-equal on", bad)
	fmt.Println("  accepted:", e.Accepted())
	fmt.Println("  rejecting verdicts:", e.Result.Labels())

	// The one-round all-selected decider, with certificates on the tape
	// layout of Figure 8: label#id#certificates.
	single := graph.Single("1")
	probe := dtm.NewMachine()
	probe.Add(dtm.Start, dtm.Any, dtm.Any, dtm.Any,
		dtm.Action{Q: dtm.Stop, WR: dtm.Any, WI: dtm.Any, WS: dtm.Any})
	pe, err := probe.Run(single, graph.IDAssignment{"0"}, [][]string{{"11", "01"}}, dtm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 8 tape layout for a node with label 1, id 0, certificates [11 01]:\n")
	fmt.Printf("  internal tape: %q\n", pe.Internals[0])
}
