// Pumping walk-through: executes the separation arguments at the bottom of
// the locally polynomial hierarchy (Figure 2 / Section 9.1) against real
// machines — the cycle-gluing indistinguishability of Proposition 24 and
// the certificate-pumping of Proposition 26.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	p24, err := experiments.Proposition24(9, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p24)
	fmt.Println()

	p26, err := experiments.Proposition26(24, 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p26)
	fmt.Println()
	fmt.Println("Proposition 24: no LP machine can decide 2-colorability;")
	fmt.Println("Proposition 26: no bounded-certificate NLP verifier survives pumping.")
}
