// Reduction walk-through: reproduces Figure 3 of the paper — the locally
// polynomial reduction from all-selected to Hamiltonicity (Proposition
// 19) — and prints the cluster structure of the output graph. It then
// runs the distributed Cook–Levin chain of Theorem 23 on a small Boolean
// graph (Figure 4).
package main

import (
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/props"
	"repro/internal/reduce"
	"repro/internal/sat"
)

func main() {
	// The Figure 3 input: a 4-cycle u1..u4 where u2 carries label 0.
	g := graph.MustNew(4, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
	}, []string{"1", "0", "1", "1"})
	fmt.Println("input:", g)

	red := reduce.AllSelectedToHamiltonian()
	res, err := red.Apply(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Validate(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %d nodes, %d edges\n", res.Out.N(), res.Out.NumEdges())
	for u, size := range res.ClusterSizes(g) {
		fmt.Printf("  cluster of u%d: %d nodes (label %q)\n", u+1, size, g.Label(u))
	}
	fmt.Println("all-selected(G):   ", props.AllSelected(g))
	fmt.Println("hamiltonian(G'):   ", props.Hamiltonian(res.Out))

	// Flip u2 to selected: the pendant disappears and G' becomes
	// Hamiltonian, exactly as the figure caption describes.
	g2 := g.MustWithLabels([]string{"1", "1", "1", "1"})
	res2, err := red.Apply(g2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after selecting u2:", props.Hamiltonian(res2.Out))

	// Figure 4: the Cook–Levin chain on a Boolean graph.
	bg, err := sat.NewBooleanGraph(graph.Path(2), []sat.Formula{
		sat.MustParse("P1|~P2|~P3"),
		sat.MustParse("P3|P4|~P5"),
	})
	if err != nil {
		log.Fatal(err)
	}
	chain := reduce.Compose(reduce.SatGraphTo3SatGraph(), reduce.ThreeSatGraphToThreeColorable())
	id := graph.SmallLocallyUnique(bg.G, 1)
	cres, err := chain.Apply(bg.G, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 4 chain: Boolean graph with %d nodes → gadget graph with %d nodes\n",
		bg.G.N(), cres.Out.N())
	fmt.Println("sat-graph(G):      ", props.SatGraph(bg.G))
	fmt.Println("3-colorable(G'):   ", props.ThreeColorable(cres.Out))
}
