// Quickstart: build a labeled graph, inspect its structural
// representation, and play the Σ^lp_1 certificate game for 3-colorability
// — the distributed analogue of an NP verification (Example 5 of the
// paper). Both sides of the distributed Fagin theorem (Theorem 14) are
// exercised: the machine game and the Σ^lfo_1 sentence.
package main

import (
	"fmt"
	"log"

	"repro/internal/arbiters"
	"repro/internal/cert"
	"repro/internal/logic"
	"repro/internal/simulate"
	"repro/localph"
)

func main() {
	// A 5-cycle with single-bit labels.
	g, err := localph.NewGraph(5, []localph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
	}, []string{"1", "0", "1", "0", "1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	// The structural representation $G of Figure 5: one element per node
	// and per labeling bit.
	rep := localph.NewRep(g)
	fmt.Printf("structural representation: %d elements (5 nodes + 5 bits)\n", rep.Card())

	// A small 1-locally unique identifier assignment (Remark 3).
	id := localph.SmallLocallyUnique(g, 1)
	fmt.Println("identifiers:", id)

	// Decide the LP-property all-selected: a one-round unanimous machine.
	accepted, err := localph.Decide(arbiters.AllSelected(), g, id, simulate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all-selected (LP decider):", accepted)

	// Verify 3-colorability in NLP = Σ^lp_1: Eve supplies each node its
	// color as a certificate; the nodes exchange colors for one round and
	// check properness.
	arb := &localph.Arbiter{
		Machine:  arbiters.ThreeColorable(),
		Level:    localph.Sigma(1),
		RadiusID: 1,
		Bound:    localph.CertBound{R: 1, P: localph.Polynomial{0, 2}},
	}
	ok, err := arb.StrategyGameValue(g, id,
		[]localph.Strategy{arbiters.ColoringStrategy(3)},
		[]cert.Domain{{}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-colorable (NLP certificate game):", ok)

	// The same property through the logic side of the distributed Fagin
	// theorem: the Σ^lfo_1 sentence of Example 5.
	opts := logic.NodeRestricted(rep, logic.ColorNames(3)...)
	fval, err := localph.SatFormula(rep.Structure, logic.ThreeColorable(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-colorable (Σ^lfo_1 formula):", fval)
}
