//go:build tools

// Package tools pins the import paths of the external dev tools the
// Makefile gate runs (versions live next to them in the Makefile
// STATICCHECK/GOVULNCHECK variables). The build tag keeps them out of
// every real build; the hermetic image cannot resolve these modules,
// which is fine because nothing builds with -tags tools.
package tools

import (
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
