// Package repro's root benchmark harness: one benchmark per reproduced
// figure/example of the paper, as indexed in DESIGN.md. The paper
// reports no absolute performance numbers (it is a theory paper); these
// benchmarks document the cost of regenerating each machine-checked
// experiment, the scaling shape of the core machinery, and — through the
// *Engines pairs — the sequential-vs-parallel behavior of the
// internal/search evaluation engine.
package repro

import (
	"testing"

	"repro/internal/arbiters"
	"repro/internal/cert"
	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/experiments"
	"repro/internal/games"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/pictures"
	"repro/internal/props"
	"repro/internal/reduce"
	"repro/internal/sat"
	"repro/internal/search"
	"repro/internal/simulate"
	"repro/internal/structure"
)

// engines is the sequential/parallel pair every *Engines benchmark runs:
// identical inputs, identical results, only the search engine differs.
// On a single-CPU host the two coincide (the parallel engine degrades to
// one worker); the speedup is measured, not asserted, so compare the
// sub-benchmarks on the target hardware.
var engines = []struct {
	name string
	opts search.Options
}{
	{"sequential", search.Sequential()},
	{"parallel", search.Parallel(0)},
}

// BenchmarkFig1ThreeRoundColoring regenerates Figure 1: the minimax
// evaluation of the 3-round 3-colorability game on both instances.
func BenchmarkFig1ThreeRoundColoring(b *testing.B) {
	no := graph.Figure1NoInstance()
	yes := graph.Figure1YesInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if props.ThreeRoundThreeColorable(no) || !props.ThreeRoundThreeColorable(yes) {
			b.Fatal("figure 1 game value changed")
		}
	}
}

// BenchmarkFig2Separations regenerates the ground-level separations of
// Figure 2/13 (Propositions 24 and 26).
func BenchmarkFig2Separations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !experiments.Figure2Separations().OK() {
			b.Fatal("separation experiment failed")
		}
	}
}

// BenchmarkFig3HamiltonianReduction regenerates Figure 3/10: the
// Proposition 19 reduction plus the ground-truth Hamiltonicity check.
func BenchmarkFig3HamiltonianReduction(b *testing.B) {
	g := graph.Cycle(4).MustWithLabels(graph.AllSelectedLabels(4))
	red := reduce.AllSelectedToHamiltonian()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := red.Apply(g, nil)
		if err != nil || !props.Hamiltonian(res.Out) {
			b.Fatal("reduction broke")
		}
	}
}

// BenchmarkFig4ColorabilityReduction regenerates Figure 4/12: the
// Cook–Levin chain into 3-colorability.
func BenchmarkFig4ColorabilityReduction(b *testing.B) {
	bg, err := sat.NewBooleanGraph(graph.Path(2), []sat.Formula{
		sat.MustParse("P1|~P2|~P3"), sat.MustParse("P3|P4|~P5"),
	})
	if err != nil {
		b.Fatal(err)
	}
	chain := reduce.Compose(reduce.SatGraphTo3SatGraph(), reduce.ThreeSatGraphToThreeColorable())
	id := graph.SmallLocallyUnique(bg.G, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chain.Apply(bg.G, id)
		if err != nil || !props.ThreeColorable(res.Out) {
			b.Fatal("chain broke")
		}
	}
}

// BenchmarkFig5Structure regenerates Figure 5: building structural
// representations.
func BenchmarkFig5Structure(b *testing.B) {
	g := graph.Figure5Graph()
	want := g.N()
	for u := 0; u < g.N(); u++ {
		want += len(g.Label(u))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if structure.NewRep(g).Card() != want {
			b.Fatal("rep changed")
		}
	}
}

// BenchmarkFig6Pictures regenerates Figure 6/14: picture representations
// and the squares tiling system.
func BenchmarkFig6Pictures(b *testing.B) {
	squares := pictures.SquaresSystem()
	p := pictures.Uniform(0, 4, 4, "")
	q := pictures.Uniform(0, 4, 3, "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		okP, err1 := squares.Accepts(p)
		okQ, err2 := squares.Accepts(q)
		if err1 != nil || err2 != nil || !okP || okQ {
			b.Fatal("tiling system changed")
		}
	}
}

// BenchmarkFig7LocalityLadder regenerates the Figure 7 ladder experiment.
func BenchmarkFig7LocalityLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !experiments.Figure7Ladder().OK() {
			b.Fatal("ladder failed")
		}
	}
}

// BenchmarkFig8TuringMachine regenerates Figure 8: the faithful
// three-tape TM exchanging real messages.
func BenchmarkFig8TuringMachine(b *testing.B) {
	m := dtm.AllEqualMachine()
	g := graph.Cycle(8).MustWithLabels([]string{"10", "10", "10", "10", "10", "10", "10", "10"})
	id := graph.SmallLocallyUnique(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := m.Run(g, id, nil, dtm.Options{})
		if err != nil || !e.Accepted() {
			b.Fatal("TM broke")
		}
	}
}

// BenchmarkFig9EulerianReduction regenerates Figure 9 (Proposition 18).
func BenchmarkFig9EulerianReduction(b *testing.B) {
	g := graph.Complete(4).MustWithLabels(graph.BitLabels(4, 0b0111))
	red := reduce.AllSelectedToEulerian()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := red.Apply(g, nil)
		if err != nil || props.Eulerian(res.Out) {
			b.Fatal("reduction broke")
		}
	}
}

// BenchmarkFig11CoReduction regenerates Figure 11 (Proposition 20).
func BenchmarkFig11CoReduction(b *testing.B) {
	g := graph.Path(2).MustWithLabels([]string{"1", "0"})
	red := reduce.NotAllSelectedToHamiltonian()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := red.Apply(g, nil)
		if err != nil || !props.Hamiltonian(res.Out) {
			b.Fatal("reduction broke")
		}
	}
}

// BenchmarkExampleFormulas regenerates the Section 5.2 examples: the
// Σ^lfo_1 3-colorability formula evaluated by second-order enumeration.
func BenchmarkExampleFormulas(b *testing.B) {
	g := graph.Cycle(5)
	rep := structure.NewRep(g)
	f := logic.ThreeColorable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := logic.Sat(rep.Structure, f, logic.Options{MaxEnumBits: 18})
		if err != nil || !ok {
			b.Fatal("formula evaluation broke")
		}
	}
}

// BenchmarkSpanningForestGame measures the Σ^lp_3 spanning-forest game
// (Example 6 semantics) on a labeled cycle.
func BenchmarkSpanningForestGame(b *testing.B) {
	g := graph.Cycle(5).MustWithLabels([]string{"1", "1", "0", "1", "1"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !games.EveWinsPointsTo(g, games.IsUnselected) {
			b.Fatal("game value changed")
		}
	}
}

// BenchmarkFaginCrossValidation regenerates the Theorem 14 experiment.
func BenchmarkFaginCrossValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !experiments.FaginCrossValidation().OK() {
			b.Fatal("Fagin cross-validation failed")
		}
	}
}

// BenchmarkCookLevin regenerates the Theorem 22 τ-translation and joint
// satisfiability check.
func BenchmarkCookLevin(b *testing.B) {
	g := graph.Cycle(5)
	f := logic.KColorable(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bg, err := reduce.FormulaToBooleanGraph(g, f)
		if err != nil || !bg.Satisfiable() {
			b.Fatal("translation broke")
		}
	}
}

// BenchmarkLemma13Envelope regenerates the space-time envelope
// measurement.
func BenchmarkLemma13Envelope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if !experiments.Lemma13Envelope().OK() {
			b.Fatal("envelope violated")
		}
	}
}

// BenchmarkTilingSystems measures tiling acceptance across an exhaustive
// 1-bit picture family.
func BenchmarkTilingSystems(b *testing.B) {
	ts := pictures.TopRowOnesSystem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		pictures.ForEachPicture(1, 2, 3, func(p *pictures.Picture) bool {
			ok, err := ts.Accepts(p)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				count++
			}
			return true
		})
		if count != 1 {
			b.Fatalf("language size %d", count)
		}
	}
}

// BenchmarkLocalEngineScaling measures the synchronous LOCAL engine on
// growing cycles (the substrate every arbiter runs on).
func BenchmarkLocalEngineScaling(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		n := n
		b.Run(sizeName(n), func(b *testing.B) {
			g := graph.Cycle(n).MustWithLabels(graph.AllSelectedLabels(n))
			id := graph.SmallLocallyUnique(g, 1)
			m := arbiters.AllEqual()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := simulate.Decide(m, g, id, simulate.Options{})
				if err != nil || !ok {
					b.Fatal("engine broke")
				}
			}
		})
	}
}

// BenchmarkCertificateGame measures exhaustive Σ^lp_1 game evaluation (the
// quantifier machinery of the hierarchy) for 2-colorability on C4.
func BenchmarkCertificateGame(b *testing.B) {
	g := graph.Cycle(4)
	id := graph.SmallLocallyUnique(g, 1)
	arb := &core.Arbiter{Machine: arbiters.TwoColorable(), Level: core.Sigma(1),
		RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{0, 2}}}
	domains := []cert.Domain{cert.UniformDomain(4, 1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := arb.GameValue(g, id, domains)
		if err != nil || !ok {
			b.Fatal("game broke")
		}
	}
}

// BenchmarkThreeRoundColoringEngines is the Example 1 minimax under
// both engines on a spider of 8 length-2 legs: Eve's opening block is
// 3^8 leaf colorings, large enough that the parallel engine splits it
// across the pool (the Figure 1 instances themselves are below the
// engine's small-space threshold, where both engines coincide — see
// BenchmarkFig1ThreeRoundColoring for their absolute cost).
func BenchmarkThreeRoundColoringEngines(b *testing.B) {
	g := spiderGraph(8)
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if props.ThreeRoundThreeColorableOpt(g, e.opts) {
					b.Fatal("Adam lost the spider game")
				}
			}
		})
	}
}

// spiderGraph is a star of k length-2 legs: k degree-1 leaves (Eve's
// opening block), k degree-2 mid nodes (Adam's), one center (Eve's
// closing block). Adam wins by mirroring a leaf color, so the opening
// space is explored exhaustively.
func spiderGraph(k int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < k; i++ {
		mid, leaf := 2*i+1, 2*i+2
		edges = append(edges, graph.Edge{U: 0, V: mid}, graph.Edge{U: mid, V: leaf})
	}
	return graph.MustNew(2*k+1, edges, nil)
}

// BenchmarkFig2SeparationsEngines runs the ground-level separations with
// the machine executions fanned out across the pool vs. strictly in
// sequence.
func BenchmarkFig2SeparationsEngines(b *testing.B) {
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !experiments.Figure2SeparationsOpt(e.opts).OK() {
					b.Fatal("separation experiment failed")
				}
			}
		})
	}
}

// BenchmarkNonColorableGameEngines evaluates the Example 7 complement
// game on K4 with k=3: the graph is not 3-colorable, so the outermost
// universal quantifier over all 2^12 color-set proposals runs to
// exhaustion — the workload the prefix-split pool is built for.
func BenchmarkNonColorableGameEngines(b *testing.B) {
	g := graph.Complete(4)
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !games.EveWinsNonKColorableOpt(g, 3, e.opts) {
					b.Fatal("K4 became 3-colorable")
				}
			}
		})
	}
}

// BenchmarkSpanningForestGameEngines is the Example 6 game on an
// all-selected C9, where Eve has no winning forest and the engine must
// refute every one of the 3^9 parent assignments.
func BenchmarkSpanningForestGameEngines(b *testing.B) {
	g := graph.Cycle(9).MustWithLabels(graph.AllSelectedLabels(9))
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if games.EveWinsPointsToOpt(g, games.IsUnselected, e.opts) {
					b.Fatal("game value changed")
				}
			}
		})
	}
}

// BenchmarkCoreGameEngines evaluates a full three-alternation certificate
// game (Σ^lp_3: ∃κ1∀κ2∃κ3) under both engine configurations. The machine
// accepts iff the three certificates are single bits whose parity matches
// the label; Adam's invalid κ2 plays defeat every κ1, so the outer
// existential level — 3^4 = 81 assignments — runs to exhaustion and every
// branch exercises the levels below it against one shared
// simulate.Prepared instance.
//
// "sequential" is core.Reference(): the unoptimized equivalence baseline
// (one worker, no memo, no bitset enumeration, no pooled leaves, no
// symmetry pruning). "parallel" is the optimized default engine with a
// live transposition table shared across iterations, the way the service
// holds one table across requests: the first iteration pays the cold
// game (bitset leaf enumeration, pooled simulation scratch, symmetry
// pruning), later iterations hit the memoized subgames. The ratio is the
// PR 8 acceptance number — the optimized engine must beat the reference
// by >= 2x.
func BenchmarkCoreGameEngines(b *testing.B) {
	g := graph.Path(4).MustWithLabels([]string{"0", "1", "1", "0"})
	id := graph.GloballyUnique(g)
	type st struct{ ok bool }
	m := &simulate.Machine{
		Name: "bench:triple-parity",
		Init: func(in simulate.Input) any {
			ok := len(in.Certs) == 3 && len(in.Label) == 1
			for _, c := range in.Certs {
				if len(c) != 1 {
					ok = false
				}
			}
			if ok {
				ok = (in.Certs[0][0] ^ in.Certs[1][0] ^ in.Certs[2][0] ^ in.Label[0]) == 0
			}
			return &st{ok: ok}
		},
		Round:  func(any, int, []string) ([]string, bool) { return nil, true },
		Output: func(s any) string { return map[bool]string{true: "1", false: "0"}[s.(*st).ok] },
	}
	arb := &core.Arbiter{Machine: m, Level: core.Sigma(3),
		RadiusID: 1, Bound: cert.Bound{R: 1, P: cert.Polynomial{8}}}
	domains := []cert.Domain{
		cert.UniformDomain(4, 1), cert.UniformDomain(4, 1), cert.UniformDomain(4, 1),
	}
	prep, err := simulate.Prepare(g, id)
	if err != nil {
		b.Fatal(err)
	}
	for _, tt := range []struct {
		name string
		eng  core.Engine
	}{
		{"sequential", core.Reference()},
		{"parallel", core.Engine{Opts: search.Parallel(0), Memo: core.NewMemo(0)}},
	} {
		b.Run(tt.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ok, err := arb.GameValueEngine(prep, domains, tt.eng)
				if err != nil || ok {
					b.Fatal("Σ3 game value changed")
				}
			}
		})
	}
}

// BenchmarkBatchSimulate runs 2^10 certificate assignments of the
// 2-colorability verifier against one prepared C10 through the batch
// scheduler, sequential pool vs parallel pool — the amortized-setup
// workload behind the core game leaves and the experiment sweeps.
func BenchmarkBatchSimulate(b *testing.B) {
	g := graph.Cycle(10)
	id := graph.SmallLocallyUnique(g, 1)
	prep, err := simulate.Prepare(g, id)
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	jobs := make([]simulate.Job, 1<<uint(n))
	for mask := range jobs {
		certs := make([][]string, n)
		for u := 0; u < n; u++ {
			if mask&(1<<uint(u)) != 0 {
				certs[u] = []string{"1"}
			} else {
				certs[u] = []string{"0"}
			}
		}
		jobs[mask] = simulate.Job{Machine: arbiters.TwoColorable(), Certs: certs}
	}
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			opt := simulate.BatchOptions{Workers: e.opts.Workers,
				Run: simulate.Options{Sequential: true}}
			for i := 0; i < b.N; i++ {
				results, err := prep.Batch(jobs, opt)
				if err != nil {
					b.Fatal(err)
				}
				accepted := 0
				for _, r := range results {
					if r.Accepted() {
						accepted++
					}
				}
				// C10 has exactly two proper 2-colorings.
				if accepted != 2 {
					b.Fatalf("accepted %d certificate assignments, want 2", accepted)
				}
			}
		})
	}
}

// BenchmarkSweepEngines runs the WHOLE experiment suite through the
// sharded sweep engine (experiments.AllOpt), sequential pool vs
// parallel pool — the PR 4 tentpole workload: experiments fan out
// across the pool and each experiment's instance sweeps shard through
// the same engine, so the suite's wall clock tracks the worker count
// on multicore hosts (on a single CPU the two engines coincide).
// Recorded in BENCH_pr4.json by `make bench-json`.
func BenchmarkSweepEngines(b *testing.B) {
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, rep := range experiments.AllOpt(e.opts) {
					if !rep.OK() {
						b.Fatalf("experiment %s failed under %s", rep.ID, e.name)
					}
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n < 10:
		return "n=00" + string(rune('0'+n))
	case n < 100:
		return "n=0" + string(rune('0'+n/10)) + string(rune('0'+n%10))
	default:
		return "n=" + string(rune('0'+n/100)) + string(rune('0'+(n/10)%10)) + string(rune('0'+n%10))
	}
}
